//! Serving metrics: request counters, per-kind queue statistics, batch-size
//! and latency histograms, per-endpoint stage histograms and the slow-trace
//! ring — exposed as JSON *and* Prometheus text by `GET /metrics`.
//!
//! Everything on the recording path is lock-free: counters are atomics and
//! every histogram is a [`LogHistogram`] (one atomic counter per log2
//! bucket), so a `/metrics` scrape can never block a recording thread and
//! recording threads never block each other. The only mutexes left guard
//! registration-time state (the queue list, the thread plan), touched once
//! per server start and once per scrape — never per request or per text.
//!
//! Since the per-kind batch-queue redesign, every registered scorer owns a
//! [`QueueMetrics`]: its live queue depth, its own batch-size histogram, and
//! — since the observability layer — separate `queue_wait` (enqueue → batch
//! drain) and `score` (one batched `probabilities` call) histograms, so a
//! saturated transformer queue is visible *next to* a healthy classical one
//! instead of smeared into one global number. The global batch histogram and
//! `texts_scored` remain as cross-queue aggregates.
//!
//! End-to-end request latency is recorded when a response's **last byte
//! reaches the socket** (trace finalization in the poller), not when the
//! handler finishes — so a client that drains slowly shows up in the tail.

use crate::obs::{append_histogram, HistogramSnapshot, LogHistogram, Obs, RequestTrace};
use crate::registry::FitStats;
use holistix_corpus::json::JsonValue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Crate version and git describe (the latter baked in by `build.rs` when
/// the repository is available at compile time). Served by `/healthz`'s
/// `build` section and mirrored as the `holistix_build_info` gauge.
pub fn build_info() -> (&'static str, &'static str) {
    (
        env!("CARGO_PKG_VERSION"),
        option_env!("HOLISTIX_GIT_DESCRIBE").unwrap_or("unknown"),
    )
}

/// Which endpoint a request hit, for per-endpoint counters and stage
/// histograms. [`Endpoint::name`] values double as the `endpoint` label in
/// the Prometheus exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /predict`.
    Predict,
    /// `POST /explain`.
    Explain,
    /// `POST /reload`.
    Reload,
    /// `GET /healthz`.
    Health,
    /// `GET /metrics`.
    Metrics,
    /// `GET /debug/slow`.
    DebugSlow,
    /// Anything else: unknown paths, wrong methods, unparseable requests.
    Other,
}

impl Endpoint {
    /// Every endpoint, in [`index`](Self::index) order.
    pub const ALL: [Endpoint; 7] = [
        Endpoint::Predict,
        Endpoint::Explain,
        Endpoint::Reload,
        Endpoint::Health,
        Endpoint::Metrics,
        Endpoint::DebugSlow,
        Endpoint::Other,
    ];

    /// Stable index into the per-endpoint counter array — aligned with
    /// [`crate::obs::ENDPOINT_NAMES`].
    pub fn index(self) -> usize {
        match self {
            Endpoint::Predict => 0,
            Endpoint::Explain => 1,
            Endpoint::Reload => 2,
            Endpoint::Health => 3,
            Endpoint::Metrics => 4,
            Endpoint::DebugSlow => 5,
            Endpoint::Other => 6,
        }
    }

    /// The endpoint's name: JSON key in the `requests` section and
    /// `endpoint` label value in Prometheus.
    pub fn name(self) -> &'static str {
        crate::obs::ENDPOINT_NAMES[self.index()]
    }

    /// Route a parsed request line to its endpoint. The single source of
    /// routing truth: the server's dispatch and the poller's rate-limit
    /// labeling both use this, so a shed `/predict` is counted as `predict`
    /// even when the handler never sees it.
    pub fn resolve(method: &str, path: &str) -> Endpoint {
        match (method, path) {
            ("POST", "/predict") => Endpoint::Predict,
            ("POST", "/explain") => Endpoint::Explain,
            ("POST", "/reload") => Endpoint::Reload,
            ("GET", "/healthz") => Endpoint::Health,
            ("GET", "/metrics") => Endpoint::Metrics,
            ("GET", "/debug/slow") => Endpoint::DebugSlow,
            _ => Endpoint::Other,
        }
    }
}

/// Why a request was shed with `429 Too Many Requests`. Doubles as the
/// `reason` label on `holistix_shed_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The target kind's batch queue was at its configured depth cap.
    QueueFull,
    /// The connection's token bucket was empty.
    RateLimited,
    /// Graceful degradation: `/explain` shed under aggregate queue pressure
    /// so `/predict` could keep serving.
    Degraded,
}

impl ShedReason {
    /// Every reason, in [`index`](Self::index) order.
    pub const ALL: [ShedReason; 3] = [
        ShedReason::QueueFull,
        ShedReason::RateLimited,
        ShedReason::Degraded,
    ];

    /// Stable index into the per-reason counter array.
    pub fn index(self) -> usize {
        match self {
            ShedReason::QueueFull => 0,
            ShedReason::RateLimited => 1,
            ShedReason::Degraded => 2,
        }
    }

    /// The reason's name: JSON key and Prometheus `reason` label value.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::RateLimited => "rate_limited",
            ShedReason::Degraded => "degraded",
        }
    }
}

/// The configured admission limits, echoed into `/metrics` so an operator can
/// read the active policy next to the counters it drives.
#[derive(Debug, Clone, Copy)]
struct AdmissionLimits {
    max_queue_depth: u64,
    global_intake_limit: u64,
    explain_shed_depth: u64,
    /// `(rate_per_s, burst)` when per-client rate limiting is on.
    rate_limit: Option<(f64, f64)>,
}

/// Admission-control observability: shed counters per endpoint × reason, the
/// intake-valve gauge and its open→closed transition counter, and an echo of
/// the configured limits. Lives in [`ServeMetrics`] so the admission policy
/// and `/metrics` read the same state.
#[derive(Debug)]
pub struct AdmissionMetrics {
    /// Shed (429) responses, indexed `[Endpoint::index()][ShedReason::index()]`.
    shed: [[AtomicU64; 3]; 7],
    /// 1 while the global intake valve is closed (pollers not reading).
    intake_closed: AtomicU64,
    /// Open→closed transitions of the intake valve.
    intake_closures_total: AtomicU64,
    limits: Mutex<Option<AdmissionLimits>>,
}

impl Default for AdmissionMetrics {
    fn default() -> Self {
        Self {
            shed: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            intake_closed: AtomicU64::new(0),
            intake_closures_total: AtomicU64::new(0),
            limits: Mutex::new(None),
        }
    }
}

impl AdmissionMetrics {
    /// Count one shed (429) response.
    pub fn record_shed(&self, endpoint: Endpoint, reason: ShedReason) {
        self.shed[endpoint.index()][reason.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Sheds so far for one endpoint × reason cell.
    pub fn shed_count(&self, endpoint: Endpoint, reason: ShedReason) -> u64 {
        self.shed[endpoint.index()][reason.index()].load(Ordering::Relaxed)
    }

    /// Total sheds across every endpoint and reason.
    pub fn shed_total(&self) -> u64 {
        self.shed
            .iter()
            .flat_map(|row| row.iter())
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Maintain the valve gauge; an open→closed edge bumps the transition
    /// counter exactly once even when several pollers observe it (the swap
    /// returns the previous value, so only the first closer sees 0).
    pub fn set_intake_closed(&self, closed: bool) {
        // ordering: the gauge is observational — scrapers and the valve edge
        // counter read it, but no data is published under it; pollers decide
        // intake from `QueueMetrics::try_admit`, not from this flag.
        let prev = self.intake_closed.swap(closed as u64, Ordering::Relaxed);
        if closed && prev == 0 {
            self.intake_closures_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether the intake valve is currently closed.
    pub fn intake_closed(&self) -> bool {
        self.intake_closed.load(Ordering::Relaxed) != 0
    }

    /// Open→closed valve transitions so far.
    pub fn intake_closures_total(&self) -> u64 {
        self.intake_closures_total.load(Ordering::Relaxed)
    }

    /// Echo the active admission limits (called once by
    /// [`Admission::new`](crate::admission::Admission::new)).
    pub fn set_limits(
        &self,
        max_queue_depth: u64,
        global_intake_limit: u64,
        explain_shed_depth: u64,
        rate_limit: Option<(f64, f64)>,
    ) {
        *self.limits.lock().unwrap() = Some(AdmissionLimits {
            max_queue_depth,
            global_intake_limit,
            explain_shed_depth,
            rate_limit,
        });
    }

    fn snapshot(&self, aggregate_depth: u64) -> JsonValue {
        let shed_fields: Vec<(String, JsonValue)> = Endpoint::ALL
            .iter()
            .map(|&endpoint| {
                let reasons: Vec<(&str, JsonValue)> = ShedReason::ALL
                    .iter()
                    .map(|&reason| {
                        (
                            reason.name(),
                            JsonValue::Number(self.shed_count(endpoint, reason) as f64),
                        )
                    })
                    .collect();
                (endpoint.name().to_string(), JsonValue::object(reasons))
            })
            .collect();
        let mut fields = vec![
            ("aggregate_depth", JsonValue::Number(aggregate_depth as f64)),
            ("intake_closed", JsonValue::Bool(self.intake_closed())),
            (
                "intake_closures_total",
                JsonValue::Number(self.intake_closures_total() as f64),
            ),
            ("shed_total", JsonValue::Number(self.shed_total() as f64)),
            ("shed", JsonValue::Object(shed_fields)),
        ];
        if let Some(limits) = *self.limits.lock().unwrap() {
            fields.push((
                "limits",
                JsonValue::object(vec![
                    (
                        "max_queue_depth",
                        JsonValue::Number(limits.max_queue_depth as f64),
                    ),
                    (
                        "global_intake_limit",
                        JsonValue::Number(limits.global_intake_limit as f64),
                    ),
                    (
                        "explain_shed_depth",
                        JsonValue::Number(limits.explain_shed_depth as f64),
                    ),
                    (
                        "rate_per_s",
                        limits
                            .rate_limit
                            .map_or(JsonValue::Null, |(rate, _)| JsonValue::Number(rate)),
                    ),
                    (
                        "burst",
                        limits
                            .rate_limit
                            .map_or(JsonValue::Null, |(_, burst)| JsonValue::Number(burst)),
                    ),
                ]),
            ));
        }
        JsonValue::object(fields)
    }
}

/// A batch-size histogram over a lock-free [`LogHistogram`]. Real batches are
/// small (≤ `max_batch`, default 32–64), so most sizes land in the exact
/// sub-32 buckets; larger ones coalesce into log2 buckets. The exact maximum
/// is tracked separately either way.
#[derive(Debug, Default)]
struct BatchSizes {
    histogram: LogHistogram,
}

impl BatchSizes {
    fn record(&self, size: usize) {
        self.histogram.record(size as u64);
    }

    fn max_size(&self) -> usize {
        self.histogram.max() as usize
    }

    /// `{"count": n, "max_size": m, "histogram": {"<size>": count, …}}` —
    /// keys are bucket upper bounds (exact sizes below 32).
    fn snapshot_json(&self) -> JsonValue {
        let snapshot = self.histogram.snapshot();
        let fields: Vec<(String, JsonValue)> = snapshot
            .nonzero_buckets()
            .map(|(upper, count)| (upper.to_string(), JsonValue::Number(count as f64)))
            .collect();
        JsonValue::object(vec![
            ("count", JsonValue::Number(snapshot.count() as f64)),
            ("max_size", JsonValue::Number(snapshot.max() as f64)),
            ("histogram", JsonValue::Object(fields)),
        ])
    }
}

/// Connection-layer statistics for the nonblocking multiplexer: the open
/// connection gauge, lifetime accept/close totals, readiness wakeups (one per
/// `poll(2)` return that reported at least one ready fd), pipelined requests
/// (parsed while an earlier request on the same connection was still in
/// flight) and idle-timeout evictions.
#[derive(Debug, Default)]
pub struct ConnectionMetrics {
    open: AtomicU64,
    accepted_total: AtomicU64,
    closed_total: AtomicU64,
    wakeups_total: AtomicU64,
    pipelined_total: AtomicU64,
    idle_evictions_total: AtomicU64,
}

impl ConnectionMetrics {
    /// Count one accepted connection (raises the open gauge).
    pub fn record_accepted(&self) {
        self.open.fetch_add(1, Ordering::Relaxed);
        self.accepted_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one closed connection (lowers the open gauge).
    pub fn record_closed(&self) {
        self.open.fetch_sub(1, Ordering::Relaxed);
        self.closed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one readiness wakeup (a `poll` return with ≥ 1 ready fd).
    pub fn record_wakeup(&self) {
        self.wakeups_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request parsed while an earlier one was still in flight.
    pub fn record_pipelined(&self) {
        self.pipelined_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one connection evicted by the idle-timeout wheel. The eviction
    /// also closes the connection, which is recorded separately via
    /// [`record_closed`](Self::record_closed).
    pub fn record_idle_eviction(&self) {
        self.idle_evictions_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections currently open.
    pub fn open(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    /// Requests served pipelined so far.
    pub fn pipelined_total(&self) -> u64 {
        self.pipelined_total.load(Ordering::Relaxed)
    }

    /// Idle-timeout evictions so far.
    pub fn idle_evictions_total(&self) -> u64 {
        self.idle_evictions_total.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> JsonValue {
        JsonValue::object(vec![
            ("open", JsonValue::Number(self.open() as f64)),
            (
                "accepted_total",
                JsonValue::Number(self.accepted_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "closed_total",
                JsonValue::Number(self.closed_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "wakeups_total",
                JsonValue::Number(self.wakeups_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "pipelined_requests_total",
                JsonValue::Number(self.pipelined_total() as f64),
            ),
            (
                "idle_timeout_evictions_total",
                JsonValue::Number(self.idle_evictions_total() as f64),
            ),
        ])
    }
}

/// Read this process's live OS thread count from `/proc/self/status`
/// (`Threads:` line). Linux-specific; returns `None` elsewhere or when the
/// file is unreadable. The flat-thread-count guarantee of the multiplexer is
/// asserted against exactly this number.
pub fn os_thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("Threads:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Per-queue statistics: one instance per registered scorer kind, shared
/// between that kind's [`BatcherHandle`](crate::batcher::BatcherHandle) side
/// (depth increments) and its drain loop (depth decrements, batch sizes,
/// per-job queue wait and per-batch scoring time).
///
/// Every depth change is mirrored into the server-wide `aggregate` counter
/// (shared across all queues via [`ServeMetrics::queue`]), which the global
/// intake valve and `/explain` shedding read — so "total jobs queued" is one
/// atomic load, not a walk over the queue list.
#[derive(Debug, Default)]
pub struct QueueMetrics {
    depth: AtomicU64,
    /// Aggregate depth across every queue of the owning server; a standalone
    /// `QueueMetrics::default()` (unit tests) gets a private one.
    aggregate: Arc<AtomicU64>,
    texts_scored: AtomicU64,
    batches: BatchSizes,
    /// Per-job enqueue → batch-drain wait (µs).
    queue_wait: LogHistogram,
    /// Per-batch `probabilities` call duration (µs).
    score: LogHistogram,
}

impl QueueMetrics {
    /// A fresh section whose depth changes also move the shared `aggregate`.
    fn with_aggregate(aggregate: Arc<AtomicU64>) -> Self {
        Self {
            aggregate,
            ..Self::default()
        }
    }

    /// Count one job entering the queue.
    pub fn record_enqueued(&self) {
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.aggregate.fetch_add(1, Ordering::Relaxed);
    }

    /// Reserve room for `jobs` more jobs, all or nothing: succeeds (and
    /// counts them as enqueued) only if the resulting depth stays within
    /// `cap`. The compare-exchange makes the check-and-increment atomic, so
    /// two handlers racing for the last slots cannot both win it —
    /// admission never overshoots the cap.
    pub fn try_admit(&self, jobs: u64, cap: u64) -> bool {
        let mut current = self.depth.load(Ordering::Relaxed);
        loop {
            let next = match current.checked_add(jobs) {
                Some(next) if next <= cap => next,
                _ => return false,
            };
            // ordering: pure depth accounting — the counter itself is the
            // entire shared state. No memory is published under a successful
            // reservation (the job travels through the channel, which does
            // its own synchronization), so relaxed CAS is sufficient.
            match self.depth.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.aggregate.fetch_add(jobs, Ordering::Relaxed);
                    return true;
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Count `jobs` leaving the queue unscored (shutdown drain, or an
    /// admitted reservation whose send failed).
    pub fn record_dropped(&self, jobs: usize) {
        self.depth.fetch_sub(jobs as u64, Ordering::Relaxed);
        self.aggregate.fetch_sub(jobs as u64, Ordering::Relaxed);
    }

    /// Record one scored batch of `size` jobs: each job's queue wait
    /// (enqueue → drain, µs) and the batch's single scoring call duration.
    /// Decrements the queue depth by the batch size.
    pub fn record_batch(&self, size: usize, job_wait_us: &[u64], score_us: u64) {
        if size == 0 {
            return;
        }
        self.depth.fetch_sub(size as u64, Ordering::Relaxed);
        self.aggregate.fetch_sub(size as u64, Ordering::Relaxed);
        self.texts_scored.fetch_add(size as u64, Ordering::Relaxed);
        self.batches.record(size);
        for &micros in job_wait_us {
            self.queue_wait.record(micros);
        }
        self.score.record(score_us);
    }

    /// Jobs currently waiting in (or being scored from) this queue.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// The largest batch this queue has scored (0 before the first batch).
    pub fn max_batch_size(&self) -> usize {
        self.batches.max_size()
    }

    fn snapshot(&self) -> JsonValue {
        JsonValue::object(vec![
            ("depth", JsonValue::Number(self.depth() as f64)),
            (
                "texts_scored",
                JsonValue::Number(self.texts_scored.load(Ordering::Relaxed) as f64),
            ),
            ("batches", self.batches.snapshot_json()),
            ("queue_wait_us", self.queue_wait.snapshot().to_json()),
            ("score_us", self.score.snapshot().to_json()),
        ])
    }
}

/// Shared metrics sink. One instance per server, shared by pollers, handlers
/// and the per-kind batch queues. Also owns the [`Obs`] observability state
/// (trace-id mint, per-endpoint stage histograms, slow-trace ring).
#[derive(Debug)]
pub struct ServeMetrics {
    started: Instant,
    /// Per-endpoint request counters, indexed by [`Endpoint::index`].
    requests: [AtomicU64; 7],
    error_responses: AtomicU64,
    texts_scored: AtomicU64,
    /// Requests served on an already-used connection (the 2nd, 3rd, … request
    /// of a keep-alive session). Zero means every request paid a TCP setup.
    keepalive_reuses: AtomicU64,
    /// Completed registry reloads (a `/reload` fit + swap; startup not counted).
    /// The fit stats themselves are *not* mirrored here — the registry behind
    /// [`SharedRegistry`](crate::registry::SharedRegistry) is the single source
    /// of truth and [`snapshot_with_fit`](Self::snapshot_with_fit) reads them
    /// at snapshot time.
    reloads_total: AtomicU64,
    /// Cross-queue aggregate batch histogram.
    batches: BatchSizes,
    /// End-to-end request latency (parse done → last byte written), recorded
    /// at trace finalization.
    request_latency: LogHistogram,
    /// Per-kind queue sections, in registration order.
    queues: Mutex<Vec<(String, String, Arc<QueueMetrics>)>>,
    /// Jobs queued across every kind, maintained by the [`QueueMetrics`]
    /// registered through [`queue`](Self::queue). Read by the intake valve
    /// and `/explain` shedding.
    aggregate_depth: Arc<AtomicU64>,
    /// Shed counters, intake-valve state and configured limits.
    admission: AdmissionMetrics,
    /// Connection-layer counters for the nonblocking multiplexer.
    connections: ConnectionMetrics,
    /// Configured thread plan `(pollers, handlers, queues)`, set once at
    /// server start; the point of the multiplexer is that this plan — not the
    /// connection count — determines the process's thread count.
    thread_plan: Mutex<Option<(usize, usize, usize)>>,
    /// Trace-id mint, per-endpoint × per-stage histograms, slow-trace ring.
    obs: Obs,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// A fresh, all-zero sink. `started` anchors the uptime gauge.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests: std::array::from_fn(|_| AtomicU64::new(0)),
            error_responses: AtomicU64::new(0),
            texts_scored: AtomicU64::new(0),
            keepalive_reuses: AtomicU64::new(0),
            reloads_total: AtomicU64::new(0),
            batches: BatchSizes::default(),
            request_latency: LogHistogram::new(),
            queues: Mutex::new(Vec::new()),
            aggregate_depth: Arc::new(AtomicU64::new(0)),
            admission: AdmissionMetrics::default(),
            connections: ConnectionMetrics::default(),
            thread_plan: Mutex::new(None),
            obs: Obs::new(),
        }
    }

    /// Count a request against its endpoint.
    pub fn record_request(&self, endpoint: Endpoint) {
        self.requests[endpoint.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Count an error (4xx/5xx) response.
    pub fn record_error(&self) {
        self.error_responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request served on a reused (keep-alive) connection.
    pub fn record_keepalive_reuse(&self) {
        self.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests served on reused connections so far.
    pub fn keepalive_reuses_total(&self) -> u64 {
        self.keepalive_reuses.load(Ordering::Relaxed)
    }

    /// The connection-layer counters (shared with pollers).
    pub fn connections(&self) -> &ConnectionMetrics {
        &self.connections
    }

    /// The admission-control counters (shed, intake valve, limits).
    pub fn admission(&self) -> &AdmissionMetrics {
        &self.admission
    }

    /// Count one shed (429) response against its endpoint and reason.
    pub fn record_shed(&self, endpoint: Endpoint, reason: ShedReason) {
        self.admission.record_shed(endpoint, reason);
    }

    /// Jobs currently queued (or being scored) across every kind's queue.
    pub fn aggregate_queue_depth(&self) -> u64 {
        self.aggregate_depth.load(Ordering::Relaxed)
    }

    /// The observability state: trace-id mint, stage histograms, slow ring.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Time since this sink (the server) was created.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Fold a completed request trace into the latency and stage histograms
    /// and offer it to the slow-trace ring. Called by the poller when the
    /// last byte of the response reaches the socket.
    pub fn finalize_trace(&self, trace: &RequestTrace) {
        self.request_latency
            .record(trace.total().as_micros() as u64);
        self.obs.finalize(trace);
    }

    /// A snapshot of the end-to-end request-latency histogram (µs). The
    /// `serve_throughput` bench diffs successive snapshots
    /// ([`HistogramSnapshot::minus`]) for per-sweep-stage percentiles.
    pub fn latency_snapshot(&self) -> HistogramSnapshot {
        self.request_latency.snapshot()
    }

    /// Record the configured thread plan: how many poller, handler and
    /// batch-queue threads the server runs. Reported under `threads` in the
    /// snapshot next to the live OS thread count.
    pub fn set_thread_plan(&self, pollers: usize, handlers: usize, queues: usize) {
        *self.thread_plan.lock().unwrap() = Some((pollers, handlers, queues));
    }

    /// Count one completed `/reload` (fresh registry fitted and swapped in).
    pub fn record_reload(&self) {
        self.reloads_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed reloads so far.
    pub fn reloads_total(&self) -> u64 {
        self.reloads_total.load(Ordering::Relaxed)
    }

    /// Register (or fetch) the per-queue section for a scorer kind. Called by
    /// the server when it spawns a kind's drain loop; idempotent so a restart
    /// of the queue set reuses the existing section (the first registration's
    /// `scorer_kind` family label wins). `scorer_kind` is the coarse scorer
    /// family ("classical" / "transformer" / "quantized") exposed as an extra
    /// Prometheus label on the per-queue series; the JSON snapshot stays keyed
    /// by kind name alone.
    pub fn queue(&self, kind_name: &str, scorer_kind: &str) -> Arc<QueueMetrics> {
        let mut queues = self.queues.lock().unwrap();
        if let Some((_, _, metrics)) = queues.iter().find(|(name, _, _)| name == kind_name) {
            return Arc::clone(metrics);
        }
        let metrics = Arc::new(QueueMetrics::with_aggregate(Arc::clone(
            &self.aggregate_depth,
        )));
        queues.push((
            kind_name.to_string(),
            scorer_kind.to_string(),
            Arc::clone(&metrics),
        ));
        metrics
    }

    /// Record one scored micro-batch of `size` texts (cross-queue aggregate;
    /// the owning queue's [`QueueMetrics`] is recorded separately).
    pub fn record_batch(&self, size: usize) {
        if size == 0 {
            return;
        }
        self.texts_scored.fetch_add(size as u64, Ordering::Relaxed);
        self.batches.record(size);
    }

    /// The largest batch scored so far across all queues (0 before the first
    /// batch).
    pub fn max_batch_size(&self) -> usize {
        self.batches.max_size()
    }

    /// Total requests across all endpoints (including unroutable ones, so
    /// `total` is always ≥ `errors`).
    pub fn total_requests(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// The metrics document without registry fit stats (counters only in the
    /// `registry` section). The server uses [`snapshot_with_fit`](Self::snapshot_with_fit).
    pub fn snapshot(&self) -> JsonValue {
        self.build_snapshot(None)
    }

    /// The full metrics document served by `GET /metrics`: counters plus the
    /// given registry's fit stats, read from the live registry at snapshot
    /// time so `/metrics` can never disagree with the models actually serving.
    pub fn snapshot_with_fit(&self, fit: &FitStats) -> JsonValue {
        self.build_snapshot(Some(fit))
    }

    fn build_snapshot(&self, fit: Option<&FitStats>) -> JsonValue {
        let mut registry_fields = vec![(
            "reloads_total",
            JsonValue::Number(self.reloads_total.load(Ordering::Relaxed) as f64),
        )];
        if let Some(fit) = fit {
            registry_fields.push((
                "last_fit_us",
                JsonValue::Number(fit.duration.as_micros() as f64),
            ));
            registry_fields.push(("fit_shards", JsonValue::Number(fit.shards as f64)));
            registry_fields.push(("corpus_size", JsonValue::Number(fit.corpus_size as f64)));
        }

        let queue_fields: Vec<(String, JsonValue)> = self
            .queues
            .lock()
            .unwrap()
            .iter()
            .map(|(name, _, metrics)| (name.clone(), metrics.snapshot()))
            .collect();

        let mut thread_fields = Vec::new();
        if let Some((pollers, handlers, queues)) = *self.thread_plan.lock().unwrap() {
            thread_fields.push(("pollers", JsonValue::Number(pollers as f64)));
            thread_fields.push(("handlers", JsonValue::Number(handlers as f64)));
            thread_fields.push(("queues", JsonValue::Number(queues as f64)));
        }
        thread_fields.push((
            "os_threads",
            match os_thread_count() {
                Some(n) => JsonValue::Number(n as f64),
                None => JsonValue::Null,
            },
        ));

        let request_fields: Vec<(&str, JsonValue)> =
            std::iter::once(("total", JsonValue::Number(self.total_requests() as f64)))
                .chain(Endpoint::ALL.iter().map(|&endpoint| {
                    (
                        endpoint.name(),
                        JsonValue::Number(
                            self.requests[endpoint.index()].load(Ordering::Relaxed) as f64
                        ),
                    )
                }))
                .chain(std::iter::once((
                    "errors",
                    JsonValue::Number(self.error_responses.load(Ordering::Relaxed) as f64),
                )))
                .collect();

        JsonValue::object(vec![
            ("uptime_s", JsonValue::Number(self.uptime().as_secs_f64())),
            ("requests", JsonValue::object(request_fields)),
            (
                "keepalive_reuses_total",
                JsonValue::Number(self.keepalive_reuses.load(Ordering::Relaxed) as f64),
            ),
            (
                "texts_scored",
                JsonValue::Number(self.texts_scored.load(Ordering::Relaxed) as f64),
            ),
            ("batches", self.batches.snapshot_json()),
            ("latency_us", self.request_latency.snapshot().to_json()),
            ("stages", self.obs.stages_json()),
            ("connections", self.connections.snapshot()),
            (
                "admission",
                self.admission.snapshot(self.aggregate_queue_depth()),
            ),
            ("threads", JsonValue::object(thread_fields)),
            ("queues", JsonValue::Object(queue_fields)),
            ("registry", JsonValue::object(registry_fields)),
        ])
    }

    /// The same data as [`snapshot_with_fit`](Self::snapshot_with_fit), in
    /// Prometheus text exposition format (version 0.0.4): counters, gauges
    /// and cumulative-bucket histograms. Families with no samples are
    /// omitted entirely, so every emitted `# TYPE` line has samples — the
    /// invariant [`crate::obs::validate_exposition`] checks.
    pub fn render_prometheus(&self, fit: Option<&FitStats>) -> String {
        let mut out = String::with_capacity(4096);
        let (version, git) = build_info();
        out.push_str("# HELP holistix_build_info Build metadata as labels; value is always 1.\n# TYPE holistix_build_info gauge\n");
        out.push_str(&format!(
            "holistix_build_info{{version=\"{version}\",git=\"{git}\"}} 1\n"
        ));
        out.push_str("# HELP holistix_uptime_seconds Seconds since the server started.\n# TYPE holistix_uptime_seconds gauge\n");
        out.push_str(&format!(
            "holistix_uptime_seconds {}\n",
            self.uptime().as_secs_f64()
        ));

        out.push_str("# HELP holistix_requests_total Requests received, by endpoint.\n# TYPE holistix_requests_total counter\n");
        for &endpoint in &Endpoint::ALL {
            out.push_str(&format!(
                "holistix_requests_total{{endpoint=\"{}\"}} {}\n",
                endpoint.name(),
                self.requests[endpoint.index()].load(Ordering::Relaxed)
            ));
        }
        let scalar_counters: [(&str, &str, u64); 4] = [
            (
                "holistix_error_responses_total",
                "Responses with a 4xx/5xx status.",
                self.error_responses.load(Ordering::Relaxed),
            ),
            (
                "holistix_keepalive_reuses_total",
                "Requests served on a reused keep-alive connection.",
                self.keepalive_reuses.load(Ordering::Relaxed),
            ),
            (
                "holistix_texts_scored_total",
                "Texts scored across all batch queues.",
                self.texts_scored.load(Ordering::Relaxed),
            ),
            (
                "holistix_reloads_total",
                "Completed registry reloads.",
                self.reloads_total.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in scalar_counters {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }

        out.push_str("# HELP holistix_connections_open Connections currently open.\n# TYPE holistix_connections_open gauge\n");
        out.push_str(&format!(
            "holistix_connections_open {}\n",
            self.connections.open()
        ));
        let connection_counters: [(&str, &str, u64); 5] = [
            (
                "holistix_connections_accepted_total",
                "Connections accepted.",
                self.connections.accepted_total.load(Ordering::Relaxed),
            ),
            (
                "holistix_connections_closed_total",
                "Connections closed.",
                self.connections.closed_total.load(Ordering::Relaxed),
            ),
            (
                "holistix_poll_wakeups_total",
                "poll(2) returns reporting at least one ready fd.",
                self.connections.wakeups_total.load(Ordering::Relaxed),
            ),
            (
                "holistix_pipelined_requests_total",
                "Requests parsed while an earlier one was in flight.",
                self.connections.pipelined_total(),
            ),
            (
                "holistix_idle_timeout_evictions_total",
                "Connections evicted by the idle-timeout wheel.",
                self.connections.idle_evictions_total(),
            ),
        ];
        for (name, help, value) in connection_counters {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
        if let Some(threads) = os_thread_count() {
            out.push_str("# HELP holistix_os_threads Live OS threads in this process.\n# TYPE holistix_os_threads gauge\n");
            out.push_str(&format!("holistix_os_threads {threads}\n"));
        }

        out.push_str("# HELP holistix_shed_total Requests shed with 429, by endpoint and reason.\n# TYPE holistix_shed_total counter\n");
        for &endpoint in &Endpoint::ALL {
            for &reason in &ShedReason::ALL {
                out.push_str(&format!(
                    "holistix_shed_total{{endpoint=\"{}\",reason=\"{}\"}} {}\n",
                    endpoint.name(),
                    reason.name(),
                    self.admission.shed_count(endpoint, reason)
                ));
            }
        }
        out.push_str("# HELP holistix_queue_depth_aggregate Jobs queued across every kind's batch queue.\n# TYPE holistix_queue_depth_aggregate gauge\n");
        out.push_str(&format!(
            "holistix_queue_depth_aggregate {}\n",
            self.aggregate_queue_depth()
        ));
        out.push_str("# HELP holistix_intake_closed 1 while the global intake valve is closed (pollers not reading).\n# TYPE holistix_intake_closed gauge\n");
        out.push_str(&format!(
            "holistix_intake_closed {}\n",
            self.admission.intake_closed() as u64
        ));
        out.push_str("# HELP holistix_intake_closures_total Open-to-closed transitions of the intake valve.\n# TYPE holistix_intake_closures_total counter\n");
        out.push_str(&format!(
            "holistix_intake_closures_total {}\n",
            self.admission.intake_closures_total()
        ));
        if let Some(limits) = *self.admission.limits.lock().unwrap() {
            let mut limit_gauges: Vec<(&str, &str, f64)> = vec![
                (
                    "holistix_admission_queue_depth_limit",
                    "Configured per-kind queue depth cap.",
                    limits.max_queue_depth as f64,
                ),
                (
                    "holistix_admission_intake_limit",
                    "Aggregate depth at which the intake valve closes.",
                    limits.global_intake_limit as f64,
                ),
                (
                    "holistix_admission_explain_shed_depth",
                    "Aggregate depth at which /explain sheds.",
                    limits.explain_shed_depth as f64,
                ),
            ];
            if let Some((rate, burst)) = limits.rate_limit {
                limit_gauges.push((
                    "holistix_admission_rate_per_s",
                    "Per-connection token-bucket refill rate, tokens per second.",
                    rate,
                ));
                limit_gauges.push((
                    "holistix_admission_burst",
                    "Per-connection token-bucket capacity, tokens.",
                    burst,
                ));
            }
            for (name, help, value) in limit_gauges {
                out.push_str(&format!(
                    "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
                ));
            }
        }

        let batch_snapshot = self.batches.histogram.snapshot();
        if batch_snapshot.count() > 0 {
            out.push_str("# HELP holistix_batch_size Scored micro-batch sizes (texts per batch), all queues.\n# TYPE holistix_batch_size histogram\n");
            append_histogram(&mut out, "holistix_batch_size", "", &batch_snapshot);
        }
        let latency_snapshot = self.request_latency.snapshot();
        if latency_snapshot.count() > 0 {
            out.push_str("# HELP holistix_request_latency_us End-to-end request latency (parse done to last byte written), microseconds.\n# TYPE holistix_request_latency_us histogram\n");
            append_histogram(
                &mut out,
                "holistix_request_latency_us",
                "",
                &latency_snapshot,
            );
        }

        let queues = self.queues.lock().unwrap();
        if !queues.is_empty() {
            out.push_str("# HELP holistix_queue_depth Jobs waiting in (or being scored from) the queue.\n# TYPE holistix_queue_depth gauge\n");
            for (kind, family, queue) in queues.iter() {
                out.push_str(&format!(
                    "holistix_queue_depth{{kind=\"{kind}\",scorer_kind=\"{family}\"}} {}\n",
                    queue.depth()
                ));
            }
            out.push_str("# HELP holistix_queue_texts_scored_total Texts this queue has scored.\n# TYPE holistix_queue_texts_scored_total counter\n");
            for (kind, family, queue) in queues.iter() {
                out.push_str(&format!(
                    "holistix_queue_texts_scored_total{{kind=\"{kind}\",scorer_kind=\"{family}\"}} {}\n",
                    queue.texts_scored.load(Ordering::Relaxed)
                ));
            }
            // Per-kind histograms: only kinds with samples, and the TYPE line
            // only when at least one kind has any.
            type Selector = fn(&QueueMetrics) -> &LogHistogram;
            let families: [(&str, &str, Selector); 3] = [
                (
                    "holistix_queue_batch_size",
                    "Scored batch sizes for this queue.",
                    |q| &q.batches.histogram,
                ),
                (
                    "holistix_queue_wait_us",
                    "Per-job wait from enqueue to batch drain, microseconds.",
                    |q| &q.queue_wait,
                ),
                (
                    "holistix_queue_score_us",
                    "Per-batch scoring call duration, microseconds.",
                    |q| &q.score,
                ),
            ];
            for (name, help, select) in families {
                let snapshots: Vec<(&str, &str, HistogramSnapshot)> = queues
                    .iter()
                    .map(|(kind, family, queue)| {
                        (kind.as_str(), family.as_str(), select(queue).snapshot())
                    })
                    .filter(|(_, _, s)| s.count() > 0)
                    .collect();
                if snapshots.is_empty() {
                    continue;
                }
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
                for (kind, family, snapshot) in snapshots {
                    append_histogram(
                        &mut out,
                        name,
                        &format!("kind=\"{kind}\",scorer_kind=\"{family}\""),
                        &snapshot,
                    );
                }
            }
        }
        drop(queues);

        self.obs.render_prometheus_into(&mut out);

        if let Some(fit) = fit {
            let fit_gauges: [(&str, &str, f64); 3] = [
                (
                    "holistix_registry_last_fit_us",
                    "Duration of the registry's most recent fit, microseconds.",
                    fit.duration.as_micros() as f64,
                ),
                (
                    "holistix_registry_fit_shards",
                    "Shards the most recent fit ran across.",
                    fit.shards as f64,
                ),
                (
                    "holistix_registry_corpus_size",
                    "Posts in the corpus behind the serving registry.",
                    fit.corpus_size as f64,
                ),
            ];
            for (name, help, value) in fit_gauges {
                out.push_str(&format!(
                    "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{validate_exposition, TraceStamp};

    /// A finalized trace with the given endpoint and end-to-end total.
    fn finalize_total(metrics: &ServeMetrics, endpoint: Endpoint, total: Duration) {
        let started = Instant::now();
        let mut trace = metrics.obs().begin_trace(started);
        trace.endpoint = endpoint.name();
        trace.stamp_at(TraceStamp::WriteDone, started + total);
        metrics.finalize_trace(&trace);
    }

    #[test]
    fn batch_histogram_tracks_sizes_and_texts() {
        let metrics = ServeMetrics::new();
        metrics.record_batch(1);
        metrics.record_batch(4);
        metrics.record_batch(4);
        metrics.record_batch(0); // ignored
        assert_eq!(metrics.max_batch_size(), 4);
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.get("texts_scored").unwrap().as_f64(), Some(9.0));
        let batches = snapshot.get("batches").unwrap();
        assert_eq!(batches.get("count").unwrap().as_f64(), Some(3.0));
        assert_eq!(batches.get("max_size").unwrap().as_f64(), Some(4.0));
        let histogram = batches.get("histogram").unwrap();
        assert_eq!(histogram.get("1").unwrap().as_f64(), Some(1.0));
        assert_eq!(histogram.get("4").unwrap().as_f64(), Some(2.0));
        assert_eq!(histogram.get("2"), None);
    }

    #[test]
    fn latency_percentiles_come_from_finalized_traces() {
        let metrics = ServeMetrics::new();
        for micros in 1..=100u64 {
            finalize_total(&metrics, Endpoint::Predict, Duration::from_micros(micros));
        }
        let snapshot = metrics.snapshot();
        let latency = snapshot.get("latency_us").unwrap();
        assert_eq!(latency.get("count").unwrap().as_f64(), Some(100.0));
        // Values ≥ 32 land in log2 buckets: the estimate may overshoot the
        // exact nearest-rank value by at most one bucket width.
        let p50 = latency.get("p50").unwrap().as_f64().unwrap();
        let (_, p50_upper) = crate::obs::bucket_bounds(50);
        assert!((50.0..=p50_upper as f64).contains(&p50), "p50 {p50}");
        let p99 = latency.get("p99").unwrap().as_f64().unwrap();
        let (_, p99_upper) = crate::obs::bucket_bounds(99);
        assert!((99.0..=p99_upper as f64).contains(&p99), "p99 {p99}");
        assert_eq!(latency.get("max").unwrap().as_f64(), Some(100.0));
        // The stage histogram for the endpoint saw the same traces.
        let write = metrics
            .obs()
            .stage_snapshot("predict", TraceStamp::WriteDone as usize);
        assert_eq!(write.count(), 100);
    }

    #[test]
    fn empty_latency_histogram_reports_null() {
        let snapshot = ServeMetrics::new().snapshot();
        let latency = snapshot.get("latency_us").unwrap();
        assert_eq!(latency.get("p50"), Some(&JsonValue::Null));
        assert_eq!(latency.get("count").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn endpoint_counters_sum_into_total() {
        let metrics = ServeMetrics::new();
        metrics.record_request(Endpoint::Predict);
        metrics.record_request(Endpoint::Predict);
        metrics.record_request(Endpoint::Health);
        metrics.record_request(Endpoint::Reload);
        metrics.record_request(Endpoint::DebugSlow);
        metrics.record_error();
        assert_eq!(metrics.total_requests(), 5);
        let snapshot = metrics.snapshot();
        let requests = snapshot.get("requests").unwrap();
        assert_eq!(requests.get("predict").unwrap().as_f64(), Some(2.0));
        assert_eq!(requests.get("reload").unwrap().as_f64(), Some(1.0));
        assert_eq!(requests.get("debug_slow").unwrap().as_f64(), Some(1.0));
        assert_eq!(requests.get("errors").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn keepalive_reuse_counter_round_trips() {
        let metrics = ServeMetrics::new();
        assert_eq!(metrics.keepalive_reuses_total(), 0);
        metrics.record_keepalive_reuse();
        metrics.record_keepalive_reuse();
        assert_eq!(metrics.keepalive_reuses_total(), 2);
        let snapshot = metrics.snapshot();
        assert_eq!(
            snapshot.get("keepalive_reuses_total").unwrap().as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn queue_sections_track_depth_batches_wait_and_score() {
        let metrics = ServeMetrics::new();
        let lr = metrics.queue("LR", "classical");
        let bert = metrics.queue("BERT", "transformer");
        // Idempotent registration returns the same section.
        assert!(Arc::ptr_eq(&lr, &metrics.queue("LR", "classical")));

        for _ in 0..5 {
            lr.record_enqueued();
        }
        assert_eq!(lr.depth(), 5);
        lr.record_batch(3, &[10, 20, 30], 250);
        assert_eq!(lr.depth(), 2);
        assert_eq!(lr.max_batch_size(), 3);
        bert.record_enqueued();
        bert.record_dropped(1);
        assert_eq!(bert.depth(), 0);

        let snapshot = metrics.snapshot();
        let queues = snapshot.get("queues").unwrap();
        let lr_section = queues.get("LR").unwrap();
        assert_eq!(lr_section.get("depth").unwrap().as_f64(), Some(2.0));
        assert_eq!(lr_section.get("texts_scored").unwrap().as_f64(), Some(3.0));
        let lr_batches = lr_section.get("batches").unwrap();
        assert_eq!(lr_batches.get("max_size").unwrap().as_f64(), Some(3.0));
        let lr_wait = lr_section.get("queue_wait_us").unwrap();
        // Waits below 32 µs land in exact buckets: p50 of {10,20,30} is 20.
        assert_eq!(lr_wait.get("p50").unwrap().as_f64(), Some(20.0));
        assert_eq!(lr_wait.get("count").unwrap().as_f64(), Some(3.0));
        let lr_score = lr_section.get("score_us").unwrap();
        assert_eq!(lr_score.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(lr_score.get("max").unwrap().as_f64(), Some(250.0));
        let bert_section = queues.get("BERT").unwrap();
        assert_eq!(bert_section.get("depth").unwrap().as_f64(), Some(0.0));
        assert_eq!(
            bert_section.get("queue_wait_us").unwrap().get("p50"),
            Some(&JsonValue::Null)
        );
    }

    #[test]
    fn connection_counters_and_thread_plan_round_trip() {
        let metrics = ServeMetrics::new();
        let conns = metrics.connections();
        conns.record_accepted();
        conns.record_accepted();
        conns.record_wakeup();
        conns.record_pipelined();
        conns.record_idle_eviction();
        conns.record_closed();
        assert_eq!(conns.open(), 1);
        metrics.set_thread_plan(2, 8, 3);

        let snapshot = metrics.snapshot();
        let section = snapshot.get("connections").unwrap();
        assert_eq!(section.get("open").unwrap().as_f64(), Some(1.0));
        assert_eq!(section.get("accepted_total").unwrap().as_f64(), Some(2.0));
        assert_eq!(section.get("closed_total").unwrap().as_f64(), Some(1.0));
        assert_eq!(section.get("wakeups_total").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            section.get("pipelined_requests_total").unwrap().as_f64(),
            Some(1.0)
        );
        assert_eq!(
            section
                .get("idle_timeout_evictions_total")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        let threads = snapshot.get("threads").unwrap();
        assert_eq!(threads.get("pollers").unwrap().as_f64(), Some(2.0));
        assert_eq!(threads.get("handlers").unwrap().as_f64(), Some(8.0));
        assert_eq!(threads.get("queues").unwrap().as_f64(), Some(3.0));
        // On Linux the live OS thread count is a positive number.
        let os_threads = os_thread_count().expect("Linux /proc/self/status");
        assert!(os_threads >= 1);
        assert!(threads.get("os_threads").unwrap().as_f64().unwrap() >= 1.0);
    }

    #[test]
    fn registry_fit_stats_round_trip_through_snapshot() {
        let metrics = ServeMetrics::new();
        // Without a registry, the section carries counters only.
        let bare = metrics.snapshot();
        let section = bare.get("registry").unwrap();
        assert_eq!(section.get("reloads_total").unwrap().as_f64(), Some(0.0));
        assert_eq!(section.get("last_fit_us"), None);

        metrics.record_reload();
        metrics.record_reload();
        assert_eq!(metrics.reloads_total(), 2);
        let fit = FitStats {
            duration: std::time::Duration::from_micros(12_500),
            shards: 4,
            corpus_size: 2_000,
        };
        let snapshot = metrics.snapshot_with_fit(&fit);
        let section = snapshot.get("registry").unwrap();
        assert_eq!(section.get("reloads_total").unwrap().as_f64(), Some(2.0));
        assert_eq!(section.get("last_fit_us").unwrap().as_f64(), Some(12_500.0));
        assert_eq!(section.get("fit_shards").unwrap().as_f64(), Some(4.0));
        assert_eq!(section.get("corpus_size").unwrap().as_f64(), Some(2_000.0));
    }

    #[test]
    fn prometheus_exposition_is_valid_and_matches_json() {
        let metrics = ServeMetrics::new();
        metrics.record_request(Endpoint::Predict);
        metrics.record_request(Endpoint::Predict);
        metrics.record_request(Endpoint::Metrics);
        metrics.record_error();
        metrics.record_keepalive_reuse();
        metrics.record_batch(3);
        metrics.record_batch(40); // a log2-bucketed size
        let lr = metrics.queue("LR", "classical");
        for _ in 0..3 {
            lr.record_enqueued();
        }
        lr.record_batch(3, &[15, 40, 1000], 900);
        finalize_total(&metrics, Endpoint::Predict, Duration::from_micros(480));
        metrics.set_thread_plan(2, 4, 1);
        let fit = FitStats {
            duration: Duration::from_micros(7_000),
            shards: 2,
            corpus_size: 90,
        };

        let text = metrics.render_prometheus(Some(&fit));
        validate_exposition(&text).expect("valid exposition");

        // Counters agree with the JSON snapshot.
        let json = metrics.snapshot_with_fit(&fit);
        let predict_json = json
            .get("requests")
            .unwrap()
            .get("predict")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(text.contains(&format!(
            "holistix_requests_total{{endpoint=\"predict\"}} {predict_json}"
        )));
        let scored_json = json.get("texts_scored").unwrap().as_f64().unwrap();
        assert!(text.contains(&format!("holistix_texts_scored_total {scored_json}")));
        // Histogram series exist with cumulative buckets ending in +Inf.
        assert!(text.contains("holistix_request_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("holistix_queue_wait_us_bucket{kind=\"LR\""));
        assert!(text.contains("holistix_batch_size_count 2"));
        // Build info and fit gauges are present.
        assert!(text.contains("holistix_build_info{version=\""));
        assert!(text.contains("holistix_registry_corpus_size 90"));
        // The per-endpoint stage histogram from the finalized trace.
        assert!(
            text.contains("holistix_stage_duration_us_bucket{endpoint=\"predict\",stage=\"write\"")
        );
    }

    #[test]
    fn queue_series_carry_scorer_kind_labels() {
        // Every per-queue Prometheus series carries both the fine-grained
        // `kind` label and the coarse `scorer_kind` family, while the JSON
        // snapshot stays keyed by kind name alone (no shape change).
        let metrics = ServeMetrics::new();
        let lr = metrics.queue("LR", "classical");
        let bert = metrics.queue("BERT", "transformer");
        let quant = metrics.queue("MentalBERT-i8", "quantized");
        lr.record_enqueued();
        lr.record_batch(1, &[25], 400);
        bert.record_enqueued();
        bert.record_batch(1, &[900], 48_000);
        quant.record_enqueued();
        quant.record_batch(1, &[60], 2_000);

        let text = metrics.render_prometheus(None);
        validate_exposition(&text).expect("valid exposition with scorer_kind labels");
        for (kind, family) in [
            ("LR", "classical"),
            ("BERT", "transformer"),
            ("MentalBERT-i8", "quantized"),
        ] {
            let labels = format!("kind=\"{kind}\",scorer_kind=\"{family}\"");
            assert!(
                text.contains(&format!("holistix_queue_depth{{{labels}}}")),
                "missing depth series for {kind}"
            );
            assert!(
                text.contains(&format!("holistix_queue_texts_scored_total{{{labels}}}")),
                "missing scored counter for {kind}"
            );
            assert!(
                text.contains(&format!("holistix_queue_wait_us_bucket{{{labels},le=")),
                "missing wait histogram for {kind}"
            );
            assert!(
                text.contains(&format!("holistix_queue_score_us_bucket{{{labels},le=")),
                "missing score histogram for {kind}"
            );
        }
        // Registering the same kind again (even with a different family)
        // returns the original handle and never forks the series.
        let again = metrics.queue("LR", "quantized");
        assert!(Arc::ptr_eq(&lr, &again));
        let text = metrics.render_prometheus(None);
        assert!(text.contains("kind=\"LR\",scorer_kind=\"classical\""));
        assert!(!text.contains("kind=\"LR\",scorer_kind=\"quantized\""));

        // JSON snapshot: still one object per kind name, no scorer_kind key.
        let snapshot = metrics.snapshot();
        let queues = snapshot.get("queues").unwrap();
        for kind in ["LR", "BERT", "MentalBERT-i8"] {
            let section = queues.get(kind).unwrap();
            assert!(section.get("scorer_kind").is_none());
            assert_eq!(section.get("texts_scored").unwrap().as_f64(), Some(1.0));
        }
    }

    #[test]
    fn empty_sink_renders_valid_prometheus() {
        // No traffic at all: histograms are omitted, counters are zero, and
        // the exposition still validates (no TYPE line without samples).
        let metrics = ServeMetrics::new();
        let text = metrics.render_prometheus(None);
        validate_exposition(&text).expect("valid empty exposition");
        assert!(!text.contains("holistix_request_latency_us"));
        assert!(text.contains("holistix_requests_total{endpoint=\"predict\"} 0"));
        // Shed counters and valve state are always present (zero-valued
        // counters still carry samples, so the exposition stays valid).
        assert!(text.contains("holistix_shed_total{endpoint=\"predict\",reason=\"queue_full\"} 0"));
        assert!(text.contains("holistix_queue_depth_aggregate 0"));
        assert!(text.contains("holistix_intake_closed 0"));
        // Limit gauges appear only once an Admission has echoed its config.
        assert!(!text.contains("holistix_admission_queue_depth_limit"));
    }

    #[test]
    fn try_admit_is_all_or_nothing_at_the_cap() {
        let queue = QueueMetrics::default();
        assert!(queue.try_admit(3, 4));
        assert_eq!(queue.depth(), 3);
        // 3 + 2 > 4: refused without partial admission.
        assert!(!queue.try_admit(2, 4));
        assert_eq!(queue.depth(), 3);
        assert!(queue.try_admit(1, 4));
        assert!(!queue.try_admit(1, 4));
        queue.record_batch(2, &[5, 5], 10);
        assert!(queue.try_admit(2, 4));
        assert_eq!(queue.depth(), 4);
        // A huge cap must not overflow the reservation arithmetic.
        assert!(!queue.try_admit(u64::MAX, u64::MAX));
    }

    #[test]
    fn aggregate_depth_sums_across_queues() {
        let metrics = ServeMetrics::new();
        let lr = metrics.queue("LR", "classical");
        let bert = metrics.queue("BERT", "transformer");
        lr.record_enqueued();
        lr.record_enqueued();
        assert!(bert.try_admit(3, 10));
        assert_eq!(metrics.aggregate_queue_depth(), 5);
        bert.record_dropped(1);
        lr.record_batch(2, &[1, 1], 10);
        assert_eq!(metrics.aggregate_queue_depth(), 2);
        assert_eq!(lr.depth(), 0);
        assert_eq!(bert.depth(), 2);
    }

    #[test]
    fn shed_counters_and_valve_round_trip_json_and_prometheus() {
        let metrics = ServeMetrics::new();
        metrics.record_shed(Endpoint::Predict, ShedReason::QueueFull);
        metrics.record_shed(Endpoint::Predict, ShedReason::QueueFull);
        metrics.record_shed(Endpoint::Explain, ShedReason::Degraded);
        metrics.record_shed(Endpoint::Health, ShedReason::RateLimited);
        let admission = metrics.admission();
        admission.set_intake_closed(true);
        admission.set_intake_closed(true); // no second transition while closed
        admission.set_intake_closed(false);
        admission.set_intake_closed(true);
        admission.set_limits(64, 256, 32, Some((10.0, 4.0)));
        assert_eq!(
            admission.shed_count(Endpoint::Predict, ShedReason::QueueFull),
            2
        );
        assert_eq!(admission.shed_total(), 4);
        assert!(admission.intake_closed());
        assert_eq!(admission.intake_closures_total(), 2);

        let snapshot = metrics.snapshot();
        let section = snapshot.get("admission").unwrap();
        assert_eq!(section.get("aggregate_depth").unwrap().as_f64(), Some(0.0));
        assert_eq!(section.get("intake_closed").unwrap().as_bool(), Some(true));
        assert_eq!(
            section.get("intake_closures_total").unwrap().as_f64(),
            Some(2.0)
        );
        assert_eq!(section.get("shed_total").unwrap().as_f64(), Some(4.0));
        let shed = section.get("shed").unwrap();
        assert_eq!(
            shed.get("predict")
                .unwrap()
                .get("queue_full")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        assert_eq!(
            shed.get("explain")
                .unwrap()
                .get("degraded")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(
            shed.get("explain")
                .unwrap()
                .get("queue_full")
                .unwrap()
                .as_f64(),
            Some(0.0)
        );
        let limits = section.get("limits").unwrap();
        assert_eq!(limits.get("max_queue_depth").unwrap().as_f64(), Some(64.0));
        assert_eq!(limits.get("rate_per_s").unwrap().as_f64(), Some(10.0));
        assert_eq!(limits.get("burst").unwrap().as_f64(), Some(4.0));

        let text = metrics.render_prometheus(None);
        validate_exposition(&text).expect("valid exposition");
        assert!(text.contains("holistix_shed_total{endpoint=\"predict\",reason=\"queue_full\"} 2"));
        assert!(text.contains("holistix_shed_total{endpoint=\"explain\",reason=\"degraded\"} 1"));
        assert!(text.contains("holistix_intake_closed 1"));
        assert!(text.contains("holistix_intake_closures_total 2"));
        assert!(text.contains("holistix_admission_queue_depth_limit 64"));
        assert!(text.contains("holistix_admission_rate_per_s 10"));
    }

    #[test]
    fn endpoint_resolve_matches_every_route() {
        assert_eq!(Endpoint::resolve("POST", "/predict"), Endpoint::Predict);
        assert_eq!(Endpoint::resolve("POST", "/explain"), Endpoint::Explain);
        assert_eq!(Endpoint::resolve("POST", "/reload"), Endpoint::Reload);
        assert_eq!(Endpoint::resolve("GET", "/healthz"), Endpoint::Health);
        assert_eq!(Endpoint::resolve("GET", "/metrics"), Endpoint::Metrics);
        assert_eq!(Endpoint::resolve("GET", "/debug/slow"), Endpoint::DebugSlow);
        assert_eq!(Endpoint::resolve("GET", "/predict"), Endpoint::Other);
        assert_eq!(Endpoint::resolve("POST", "/nope"), Endpoint::Other);
    }
}
