//! Observability substrate: lock-free log2-bucketed histograms, per-request
//! trace records, and the slowest-trace ring buffer behind `GET /debug/slow`.
//!
//! ## Histograms
//!
//! [`LogHistogram`] is an HDR-style histogram: one atomic counter per bucket,
//! where buckets are log2 octaves subdivided into [`SUB_BUCKETS`] linear
//! sub-buckets. Values below `2 * SUB_BUCKETS` (= 32) get an exact bucket
//! each; above that, a bucket's width is `2^octave`, so any reported
//! percentile overshoots the true nearest-rank value by **at most one bucket
//! width**, a relative error bounded by `1 / SUB_BUCKETS` (6.25%). Recording
//! is two relaxed `fetch_add`s and one `fetch_max` — no mutex, no allocation,
//! no sorting — so a `/metrics` scrape can never block a recording thread,
//! and recording threads can never block each other. Snapshots are plain
//! `Vec<u64>` copies that [merge](HistogramSnapshot::merge) and
//! [subtract](HistogramSnapshot::minus), which is what lets the
//! `serve_throughput` bench report per-sweep-stage percentiles from one
//! shared histogram.
//!
//! ## Traces
//!
//! A [`RequestTrace`] is minted by the connection layer the moment a request
//! finishes parsing and rides along with it through the handler pool, the
//! batch queues and back out the socket. Each boundary crossing stamps one
//! slot (a plain write — the trace is owned by exactly one thread at a time):
//!
//! ```text
//! parse done ─► handler start ─► queue enqueue ─► batch drain ─► scored
//!   (birth)       [dispatch]       [prepare]      [queue_wait]   [score]
//!                                     ─► response queued ─► last byte written
//!                                          [respond]            [write]
//! ```
//!
//! The bracketed names are the **stage durations** between consecutive
//! present stamps; they are non-overlapping and sum to the end-to-end
//! latency. When the final byte of the response hits the socket, the poller
//! [finalizes](Obs::finalize) the trace: each stage duration lands in its
//! per-endpoint [`LogHistogram`] and the whole trace is offered to the
//! [`SlowTraceBuffer`]. Endpoints that never touch a batch queue
//! (`/healthz`, `/metrics`) simply skip the queue stamps; durations are
//! computed between *present* stamps, so the accounting stays additive.
//!
//! ## The slow ring
//!
//! [`SlowTraceBuffer`] keeps the [`SLOW_TRACES`] slowest completed traces.
//! The hot path is one relaxed atomic load: a trace cheaper than the cheapest
//! kept entry is rejected without taking any lock, so sustained fast traffic
//! pays nothing for the feature. Only a genuinely slow trace (rare by
//! definition) takes the mutex to displace the current minimum.

use holistix_corpus::json::JsonValue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Linear sub-buckets per log2 octave. Bounds percentile relative error by
/// `1 / SUB_BUCKETS` for values ≥ `SUB_BUCKETS`.
pub const SUB_BUCKETS: usize = 16;

/// Octaves above the exact range. The histogram covers values up to
/// `2^(OCTAVES + 5) - 1` µs (≈ 38 years at 36 octaves); larger values clamp
/// into the final bucket.
const OCTAVES: usize = 36;

/// Total buckets: `[0, 2*SUB)` exact, then `OCTAVES` octaves × `SUB` each.
const N_BUCKETS: usize = 2 * SUB_BUCKETS + OCTAVES * SUB_BUCKETS;

/// Completed traces the slow ring retains, slowest first.
pub const SLOW_TRACES: usize = 32;

/// Map a value to its bucket index. Exact below `2 * SUB_BUCKETS`; above,
/// log2 octave + linear sub-bucket.
fn bucket_index(value: u64) -> usize {
    if value < (2 * SUB_BUCKETS) as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize;
    let octave = msb - (SUB_BUCKETS.trailing_zeros() as usize); // ≥ 1
    let within = ((value >> (msb - SUB_BUCKETS.trailing_zeros() as usize)) as usize) - SUB_BUCKETS;
    let index = (octave + 1) * SUB_BUCKETS + within;
    index.min(N_BUCKETS - 1)
}

/// The largest value a bucket covers (inclusive).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index < 2 * SUB_BUCKETS {
        return index as u64;
    }
    let octave = index / SUB_BUCKETS - 1;
    let within = (index % SUB_BUCKETS) as u64;
    ((SUB_BUCKETS as u64 + within + 1) << octave) - 1
}

/// The `[lower, upper]` value range (inclusive) of the bucket holding
/// `value` — what "within one bucket width" means for this histogram's
/// percentile error bound.
pub fn bucket_bounds(value: u64) -> (u64, u64) {
    let index = bucket_index(value);
    let upper = bucket_upper_bound(index);
    let lower = if index == 0 {
        0
    } else {
        bucket_upper_bound(index - 1) + 1
    };
    (lower, upper)
}

/// A lock-free log2-bucketed histogram. See the module docs for the error
/// bound; recording is wait-free (three relaxed atomic RMWs).
pub struct LogHistogram {
    buckets: Box<[AtomicU64; N_BUCKETS]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snapshot = self.snapshot();
        f.debug_struct("LogHistogram")
            .field("count", &snapshot.count())
            .field("sum", &snapshot.sum())
            .field("max", &snapshot.max())
            .finish()
    }
}

impl LogHistogram {
    /// An empty histogram (all buckets zero).
    pub fn new() -> Self {
        Self {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Wait-free: no lock, no allocation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters. Concurrent recording keeps
    /// going; the snapshot is internally consistent to within the writes in
    /// flight during the copy (counts never go backwards).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// An owned copy of a [`LogHistogram`]'s counters: percentiles, merging and
/// subtraction (for interval deltas) happen here, away from the live atomics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (useful as the zero point for deltas).
    pub fn empty() -> Self {
        Self {
            counts: vec![0; N_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of recorded values (for means and Prometheus `_sum`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean recorded value, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum as f64 / n as f64)
    }

    /// Nearest-rank percentile estimate: the upper bound of the bucket
    /// holding the rank-`ceil(q·n)` value, clamped to the exact recorded
    /// maximum. Overshoots the true value by at most one bucket width.
    /// `None` when the snapshot is empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // The final bucket absorbs every value past the covered
                // range, so its nominal upper bound is meaningless there —
                // the recorded max is the only honest answer.
                if index == N_BUCKETS - 1 {
                    return Some(self.max);
                }
                return Some(bucket_upper_bound(index).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Fold another snapshot into this one (histogram merge is bucket-wise
    /// addition — the property that makes sharded recording exact).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The delta since an `earlier` snapshot of the same histogram: what was
    /// recorded in between. The max is the later snapshot's (a true interval
    /// max is not recoverable from cumulative counters).
    pub fn minus(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(now, before)| now.saturating_sub(*before))
                .collect(),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Non-empty `(upper_bound, count)` buckets in ascending value order —
    /// the raw material for JSON and Prometheus exposition.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| (bucket_upper_bound(index), count))
    }

    /// `{"count": n, "p50": …, "p99": …, "p999": …, "max": …, "mean": …}`
    /// (percentiles `null` when empty) — the JSON shape `/metrics` serves for
    /// every latency histogram.
    pub fn to_json(&self) -> JsonValue {
        let pct = |q: f64| match self.percentile(q) {
            Some(v) => JsonValue::Number(v as f64),
            None => JsonValue::Null,
        };
        JsonValue::object(vec![
            ("count", JsonValue::Number(self.count() as f64)),
            ("p50", pct(0.50)),
            ("p99", pct(0.99)),
            ("p999", pct(0.999)),
            ("max", JsonValue::Number(self.max as f64)),
            (
                "mean",
                match self.mean() {
                    Some(m) => JsonValue::Number(m),
                    None => JsonValue::Null,
                },
            ),
        ])
    }
}

/// The instrumented boundary crossings of one request, in stamp order.
/// Indexes into [`RequestTrace`]'s stamp array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStamp {
    /// A handler thread picked the parsed request off the dispatch queue.
    HandlerStart = 0,
    /// The request's texts entered a scorer's batch queue.
    QueueEnqueue = 1,
    /// The batch containing the request's texts was drained for scoring.
    BatchDrain = 2,
    /// The scorer returned the request's probabilities.
    Scored = 3,
    /// The finished response was queued back to the owning poller.
    ResponseQueued = 4,
    /// The last byte of the response reached the socket.
    WriteDone = 5,
}

/// Number of stamp slots in a trace (parse completion is the implicit zero).
pub const N_STAMPS: usize = 6;

/// Stage names, indexed by the stamp that *ends* the stage. Each stage spans
/// from the previous present stamp (or parse completion) to its own stamp,
/// so the stages partition the end-to-end latency without overlap.
pub const STAGE_NAMES: [&str; N_STAMPS] = [
    "dispatch",
    "prepare",
    "queue_wait",
    "score",
    "respond",
    "write",
];

/// One request's trace: an id, the parse-completion instant, and the
/// boundary stamps accumulated as the request moves through the stack.
/// Owned by exactly one thread at any moment (poller → handler → poller), so
/// stamping is a plain array write — the atomics live in the histograms the
/// finalized trace is folded into.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// Unique per server run; serialized as 16 hex digits in `X-Trace-Id`.
    pub id: u64,
    /// Parse completion — the trace's zero point.
    pub started: Instant,
    /// Offsets from `started`, one per [`TraceStamp`]; `None` until stamped.
    stamps: [Option<Duration>; N_STAMPS],
    /// Endpoint name, set by the router (`"other"` until routed).
    pub endpoint: &'static str,
    /// Resolved model kind for predict/explain requests.
    pub kind: Option<String>,
}

impl RequestTrace {
    /// A fresh trace born at `started` (parse completion).
    pub fn new(id: u64, started: Instant) -> Self {
        Self {
            id,
            started,
            stamps: [None; N_STAMPS],
            endpoint: "other",
            kind: None,
        }
    }

    /// The id as the 16-hex-digit string carried in `X-Trace-Id`.
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.id)
    }

    /// Stamp `which` at `at`. Later re-stamps are ignored — the first
    /// crossing of a boundary is the truth.
    pub fn stamp_at(&mut self, which: TraceStamp, at: Instant) {
        let slot = which as usize;
        if self.stamps[slot].is_none() {
            self.stamps[slot] = Some(at.saturating_duration_since(self.started));
        }
    }

    /// Stamp `which` now.
    pub fn stamp(&mut self, which: TraceStamp) {
        self.stamp_at(which, Instant::now());
    }

    /// The offset of a stamp from parse completion, if stamped.
    pub fn offset(&self, which: TraceStamp) -> Option<Duration> {
        self.stamps[which as usize]
    }

    /// End-to-end duration: the latest stamp's offset (zero if unstamped).
    pub fn total(&self) -> Duration {
        self.stamps
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// `(stage_index, duration)` for every present stamp: the interval from
    /// the previous present stamp (or parse completion) to it. Non-negative
    /// by construction because stamps are taken in causal order.
    pub fn stage_durations(&self) -> Vec<(usize, Duration)> {
        let mut stages = Vec::new();
        let mut previous = Duration::ZERO;
        for (index, stamp) in self.stamps.iter().enumerate() {
            if let Some(offset) = stamp {
                stages.push((index, offset.saturating_sub(previous)));
                previous = *offset;
            }
        }
        stages
    }

    /// The per-stage breakdown as JSON — what `?trace=1` inlines into a
    /// predict/explain response and `/debug/slow` serves per trace. Stages
    /// appear in stamp order with both the absolute offset (`at_us`, from
    /// parse completion) and the stage duration (`dur_us`).
    pub fn stages_json(&self) -> JsonValue {
        let stages: Vec<JsonValue> = self
            .stage_durations()
            .into_iter()
            .map(|(index, duration)| {
                let at = self.stamps[index].unwrap_or(Duration::ZERO);
                JsonValue::object(vec![
                    ("stage", JsonValue::string(STAGE_NAMES[index])),
                    ("at_us", JsonValue::Number(at.as_micros() as f64)),
                    ("dur_us", JsonValue::Number(duration.as_micros() as f64)),
                ])
            })
            .collect();
        JsonValue::Array(stages)
    }
}

/// A finalized trace retained by the slow ring: everything `/debug/slow`
/// serves, detached from the live `Instant`s.
#[derive(Debug, Clone)]
struct SlowEntry {
    id: u64,
    endpoint: &'static str,
    kind: Option<String>,
    total_us: u64,
    /// `(stage_index, at_us, dur_us)` in stamp order.
    stages: Vec<(usize, u64, u64)>,
}

/// A bounded buffer of the slowest completed traces. The fast-path rejection
/// (a trace no slower than the cheapest kept one) is a single relaxed atomic
/// load; only admissions take the mutex.
pub struct SlowTraceBuffer {
    capacity: usize,
    /// Total µs of the cheapest kept trace once the buffer is full; 0 while
    /// filling (so everything is admitted until capacity).
    floor_us: AtomicU64,
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowTraceBuffer {
    fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            floor_us: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Offer a finalized trace. Cheap traces bounce off the atomic floor
    /// without locking.
    fn offer(&self, trace: &RequestTrace) {
        let total_us = trace.total().as_micros() as u64;
        if total_us <= self.floor_us.load(Ordering::Relaxed) {
            return;
        }
        let entry = SlowEntry {
            id: trace.id,
            endpoint: trace.endpoint,
            kind: trace.kind.clone(),
            total_us,
            stages: trace
                .stage_durations()
                .into_iter()
                .map(|(index, duration)| {
                    let at = trace.stamps[index].unwrap_or(Duration::ZERO);
                    (index, at.as_micros() as u64, duration.as_micros() as u64)
                })
                .collect(),
        };
        let mut entries = self.entries.lock().unwrap();
        entries.push(entry);
        if entries.len() > self.capacity {
            // Drop the cheapest; the new floor is the cheapest survivor.
            let (min_index, _) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.total_us)
                .expect("non-empty");
            entries.swap_remove(min_index);
        }
        if entries.len() == self.capacity {
            let floor = entries.iter().map(|e| e.total_us).min().unwrap_or(0);
            // ordering: the floor is a best-effort pre-filter — a stale read
            // only lets a borderline trace reach `offer`, where the `entries`
            // mutex re-checks it; every store happens under that same mutex,
            // so no thread synchronizes through this atomic.
            self.floor_us.store(floor, Ordering::Relaxed);
        }
    }

    /// The kept traces as JSON, slowest first — the `/debug/slow` body.
    pub fn to_json(&self) -> JsonValue {
        let mut entries = self.entries.lock().unwrap().clone();
        entries.sort_by_key(|entry| std::cmp::Reverse(entry.total_us));
        let traces: Vec<JsonValue> = entries
            .into_iter()
            .map(|entry| {
                let stages: Vec<JsonValue> = entry
                    .stages
                    .iter()
                    .map(|&(index, at_us, dur_us)| {
                        JsonValue::object(vec![
                            ("stage", JsonValue::string(STAGE_NAMES[index])),
                            ("at_us", JsonValue::Number(at_us as f64)),
                            ("dur_us", JsonValue::Number(dur_us as f64)),
                        ])
                    })
                    .collect();
                JsonValue::object(vec![
                    ("trace_id", JsonValue::string(format!("{:016x}", entry.id))),
                    ("endpoint", JsonValue::string(entry.endpoint)),
                    (
                        "model",
                        match entry.kind {
                            Some(kind) => JsonValue::string(kind),
                            None => JsonValue::Null,
                        },
                    ),
                    ("total_us", JsonValue::Number(entry.total_us as f64)),
                    ("stages", JsonValue::Array(stages)),
                ])
            })
            .collect();
        JsonValue::object(vec![
            ("capacity", JsonValue::Number(self.capacity as f64)),
            ("traces", JsonValue::Array(traces)),
        ])
    }
}

/// Splitmix64 finalizer: turns the sequential trace counter into ids that
/// look unrelated (still a bijection, so distinctness is preserved).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Endpoint names in stable order — indexes into [`Obs`]'s per-endpoint stage
/// histogram table and label values in the Prometheus exposition.
pub const ENDPOINT_NAMES: [&str; 7] = [
    "predict",
    "explain",
    "reload",
    "healthz",
    "metrics",
    "debug_slow",
    "other",
];

/// The per-server observability state: the trace-id mint, per-endpoint ×
/// per-stage duration histograms, and the slow-trace ring. Lives inside
/// [`ServeMetrics`](crate::metrics::ServeMetrics) so every layer that already
/// holds the metrics sink can stamp and finalize traces.
pub struct Obs {
    trace_counter: AtomicU64,
    /// `[endpoint][stage]` duration histograms (µs).
    endpoint_stages: Vec<[LogHistogram; N_STAMPS]>,
    slow: SlowTraceBuffer,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("traces_minted", &self.trace_counter.load(Ordering::Relaxed))
            .finish()
    }
}

impl Obs {
    /// Fresh state: zeroed histograms, empty slow ring.
    pub fn new() -> Self {
        Self {
            trace_counter: AtomicU64::new(0),
            endpoint_stages: ENDPOINT_NAMES
                .iter()
                .map(|_| std::array::from_fn(|_| LogHistogram::new()))
                .collect(),
            slow: SlowTraceBuffer::new(SLOW_TRACES),
        }
    }

    /// Mint a fresh trace born at `started` (parse completion). Ids are
    /// unique per server run.
    pub fn begin_trace(&self, started: Instant) -> RequestTrace {
        let seq = self.trace_counter.fetch_add(1, Ordering::Relaxed);
        RequestTrace::new(mix64(seq), started)
    }

    /// Traces minted so far.
    pub fn traces_started(&self) -> u64 {
        self.trace_counter.load(Ordering::Relaxed)
    }

    fn endpoint_index(endpoint: &str) -> usize {
        ENDPOINT_NAMES
            .iter()
            .position(|&name| name == endpoint)
            .unwrap_or(ENDPOINT_NAMES.len() - 1)
    }

    /// Fold a completed trace into the per-endpoint stage histograms and
    /// offer it to the slow ring. Called by the poller when the last response
    /// byte is written; costs a handful of atomic adds for fast traces.
    pub fn finalize(&self, trace: &RequestTrace) {
        let stages = &self.endpoint_stages[Self::endpoint_index(trace.endpoint)];
        for (index, duration) in trace.stage_durations() {
            stages[index].record(duration.as_micros() as u64);
        }
        self.slow.offer(trace);
    }

    /// The slow ring (for `/debug/slow`).
    pub fn slow_traces(&self) -> &SlowTraceBuffer {
        &self.slow
    }

    /// Snapshot of one endpoint × stage histogram (µs), for tests and the
    /// bench.
    pub fn stage_snapshot(&self, endpoint: &str, stage: usize) -> HistogramSnapshot {
        self.endpoint_stages[Self::endpoint_index(endpoint)][stage].snapshot()
    }

    /// The `stages` section of the JSON `/metrics` document:
    /// `{endpoint: {stage: {count, p50, p99, p999, …}}}` for endpoints with
    /// at least one finalized trace.
    pub fn stages_json(&self) -> JsonValue {
        let fields: Vec<(String, JsonValue)> = ENDPOINT_NAMES
            .iter()
            .enumerate()
            .filter_map(|(endpoint_index, &endpoint)| {
                let stages: Vec<(String, JsonValue)> = self.endpoint_stages[endpoint_index]
                    .iter()
                    .enumerate()
                    .filter(|(_, histogram)| histogram.count() > 0)
                    .map(|(stage, histogram)| {
                        (
                            STAGE_NAMES[stage].to_string(),
                            histogram.snapshot().to_json(),
                        )
                    })
                    .collect();
                (!stages.is_empty()).then(|| (endpoint.to_string(), JsonValue::Object(stages)))
            })
            .collect();
        JsonValue::Object(fields)
    }

    /// Append the per-endpoint stage histograms to a Prometheus exposition
    /// (`holistix_stage_duration_us{endpoint,stage}`).
    pub fn render_prometheus_into(&self, out: &mut String) {
        let mut any = false;
        for (endpoint_index, &endpoint) in ENDPOINT_NAMES.iter().enumerate() {
            for (stage, histogram) in self.endpoint_stages[endpoint_index].iter().enumerate() {
                let snapshot = histogram.snapshot();
                if snapshot.count() == 0 {
                    continue;
                }
                if !any {
                    out.push_str(
                        "# HELP holistix_stage_duration_us Per-stage request latency in microseconds.\n# TYPE holistix_stage_duration_us histogram\n",
                    );
                    any = true;
                }
                let labels = format!("endpoint=\"{endpoint}\",stage=\"{}\"", STAGE_NAMES[stage]);
                append_histogram(out, "holistix_stage_duration_us", &labels, &snapshot);
            }
        }
    }
}

/// Append one histogram's cumulative `_bucket` / `_sum` / `_count` series
/// with the given extra labels (no trailing comma; may be empty).
pub fn append_histogram(out: &mut String, name: &str, labels: &str, snapshot: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for (upper, count) in snapshot.nonzero_buckets() {
        cumulative += count;
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"{upper}\"}} {cumulative}\n"
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}\n",
        snapshot.count()
    ));
    if labels.is_empty() {
        out.push_str(&format!("{name}_sum {}\n", snapshot.sum()));
        out.push_str(&format!("{name}_count {}\n", snapshot.count()));
    } else {
        out.push_str(&format!("{name}_sum{{{labels}}} {}\n", snapshot.sum()));
        out.push_str(&format!("{name}_count{{{labels}}} {}\n", snapshot.count()));
    }
}

/// Validate a Prometheus text exposition: every `# TYPE` family must have at
/// least one sample; histogram `_bucket` series must be cumulative
/// (non-decreasing in `le` order) and end in `le="+Inf"` with the `_count`
/// value. Returns the first violation found. This is the checker the CI
/// smoke runs against the live `/metrics?format=prometheus` scrape.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut families: Vec<(String, String)> = Vec::new(); // (name, kind)
    let mut samples: Vec<(String, String)> = Vec::new(); // (metric, labels+value)
    for (line_no, line) in text.lines().enumerate() {
        let line_no = line_no + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {line_no}: TYPE without a name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {line_no}: TYPE {name} without a kind"))?;
            families.push((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // A sample: `name{labels} value` or `name value`.
        let (metric_and_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {line_no}: sample without a value: {line:?}"))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("line {line_no}: unparseable value {value:?}"))?;
        let metric = match metric_and_labels.split_once('{') {
            Some((name, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("line {line_no}: unterminated label set: {line:?}"));
                }
                name
            }
            None => metric_and_labels,
        };
        samples.push((metric.to_string(), line.to_string()));
    }
    if families.is_empty() {
        return Err("no # TYPE lines in exposition".to_string());
    }
    for (name, kind) in &families {
        let has_samples = if kind == "histogram" {
            samples.iter().any(|(metric, _)| {
                metric == &format!("{name}_bucket")
                    || metric == &format!("{name}_sum")
                    || metric == &format!("{name}_count")
            })
        } else {
            samples.iter().any(|(metric, _)| metric == name)
        };
        if !has_samples {
            return Err(format!("# TYPE {name} {kind} has no samples"));
        }
        if kind != "histogram" {
            continue;
        }
        // Group bucket series by their label set minus `le` and check
        // cumulativity + +Inf termination against the matching _count.
        let bucket_metric = format!("{name}_bucket");
        let mut series: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
        for (metric, line) in &samples {
            if metric != &bucket_metric {
                continue;
            }
            let (labels_part, value) = line.rsplit_once(' ').expect("validated above");
            let labels = labels_part
                .split_once('{')
                .map(|(_, l)| l.trim_end_matches('}'))
                .unwrap_or("");
            let mut le = None;
            let mut rest: Vec<&str> = Vec::new();
            for pair in labels.split(',').filter(|p| !p.is_empty()) {
                match pair.strip_prefix("le=") {
                    Some(v) => le = Some(v.trim_matches('"').to_string()),
                    None => rest.push(pair),
                }
            }
            let le = le.ok_or_else(|| format!("{bucket_metric} series without le label"))?;
            series
                .entry(rest.join(","))
                .or_default()
                .push((le, value.parse().expect("validated above")));
        }
        for (labels, buckets) in &series {
            let mut previous = f64::NEG_INFINITY;
            for (le, cumulative) in buckets {
                if *cumulative < previous {
                    return Err(format!(
                        "{bucket_metric}{{{labels}}} not cumulative at le={le}"
                    ));
                }
                previous = *cumulative;
            }
            match buckets.last() {
                Some((le, _)) if le == "+Inf" => {}
                _ => {
                    return Err(format!(
                        "{bucket_metric}{{{labels}}} does not end in le=\"+Inf\""
                    ))
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..(2 * SUB_BUCKETS as u64) {
            let (lower, upper) = bucket_bounds(v);
            assert_eq!((lower, upper), (v, v), "value {v}");
        }
    }

    #[test]
    fn bucket_bounds_partition_the_value_range() {
        // Consecutive buckets tile the u64 range without gap or overlap.
        let mut previous_upper: Option<u64> = None;
        for index in 0..N_BUCKETS - 1 {
            let upper = bucket_upper_bound(index);
            if let Some(prev) = previous_upper {
                assert!(upper > prev, "bucket {index} not increasing");
            }
            previous_upper = Some(upper);
        }
        // Every probe value maps into a bucket whose bounds contain it.
        for &v in &[0u64, 1, 31, 32, 33, 100, 1_000, 123_456, u32::MAX as u64] {
            let (lower, upper) = bucket_bounds(v);
            assert!(
                lower <= v && v <= upper,
                "value {v} outside [{lower},{upper}]"
            );
            // Relative width bound: width ≤ value / SUB_BUCKETS for v ≥ SUB.
            if v >= SUB_BUCKETS as u64 {
                assert!(
                    upper - lower <= v / SUB_BUCKETS as u64,
                    "bucket too wide at {v}: [{lower},{upper}]"
                );
            }
        }
    }

    #[test]
    fn percentiles_are_exact_for_small_values() {
        let histogram = LogHistogram::new();
        for v in 1..=20u64 {
            histogram.record(v);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.percentile(0.50), Some(10));
        assert_eq!(snapshot.percentile(0.99), Some(20));
        assert_eq!(snapshot.percentile(0.999), Some(20));
        assert_eq!(snapshot.max(), 20);
        assert_eq!(snapshot.count(), 20);
        assert_eq!(snapshot.mean(), Some(10.5));
    }

    #[test]
    fn empty_snapshot_has_no_percentiles() {
        let snapshot = LogHistogram::new().snapshot();
        assert_eq!(snapshot.percentile(0.5), None);
        assert_eq!(snapshot.mean(), None);
        assert_eq!(snapshot.count(), 0);
    }

    #[test]
    fn giant_values_clamp_into_the_final_bucket() {
        let histogram = LogHistogram::new();
        histogram.record(u64::MAX);
        histogram.record(1);
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count(), 2);
        assert_eq!(snapshot.max(), u64::MAX);
        // p99 lands in the last bucket, clamped to the recorded max.
        assert_eq!(snapshot.percentile(0.99), Some(u64::MAX));
    }

    #[test]
    fn merge_is_bucketwise_addition_and_minus_inverts_it() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        for v in [3u64, 50, 700, 9_000] {
            a.record(v);
        }
        for v in [5u64, 50, 80_000] {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 7);
        assert_eq!(merged.sum(), 3 + 50 + 700 + 9_000 + 5 + 50 + 80_000);
        assert_eq!(merged.max(), 80_000);
        let delta = merged.minus(&a.snapshot());
        assert_eq!(delta.count(), b.snapshot().count());
        assert_eq!(delta.sum(), b.snapshot().sum());
    }

    #[test]
    fn concurrent_recording_during_snapshots_loses_nothing() {
        // The lock-freedom claim, observable: writer threads hammer record()
        // while a reader snapshots in a loop; when the writers finish, the
        // final snapshot holds every single recording. With a mutex-and-sort
        // window this test would also pass, but only after the readers
        // serialized every writer — here neither side can block the other,
        // and the exact count proves no recording was dropped or torn.
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 50_000;
        let histogram = LogHistogram::new();
        crossbeam::thread::scope(|scope| {
            for w in 0..WRITERS {
                let histogram = &histogram;
                scope.spawn(move |_| {
                    for i in 0..PER_WRITER {
                        histogram.record((w as u64 * 7 + i) % 10_000);
                    }
                });
            }
            // Concurrent scrapes: counts move forward, never backwards.
            let mut last = 0u64;
            for _ in 0..50 {
                let n = histogram.snapshot().count();
                assert!(n >= last, "snapshot count went backwards: {n} < {last}");
                last = n;
            }
        })
        .unwrap();
        assert_eq!(histogram.count(), WRITERS as u64 * PER_WRITER);
    }

    #[test]
    fn trace_stages_partition_the_total() {
        let started = Instant::now();
        let mut trace = RequestTrace::new(7, started);
        trace.stamp_at(
            TraceStamp::HandlerStart,
            started + Duration::from_micros(10),
        );
        trace.stamp_at(
            TraceStamp::QueueEnqueue,
            started + Duration::from_micros(25),
        );
        trace.stamp_at(TraceStamp::BatchDrain, started + Duration::from_micros(125));
        trace.stamp_at(TraceStamp::Scored, started + Duration::from_micros(1_125));
        trace.stamp_at(
            TraceStamp::ResponseQueued,
            started + Duration::from_micros(1_150),
        );
        trace.stamp_at(
            TraceStamp::WriteDone,
            started + Duration::from_micros(1_200),
        );
        let stages = trace.stage_durations();
        assert_eq!(stages.len(), N_STAMPS);
        let total: Duration = stages.iter().map(|(_, d)| *d).sum();
        assert_eq!(total, trace.total());
        assert_eq!(trace.total(), Duration::from_micros(1_200));
        // Stage offsets are monotonic.
        let offsets: Vec<u64> = (0..N_STAMPS)
            .filter_map(|i| trace.stamps[i].map(|d| d.as_micros() as u64))
            .collect();
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn trace_skipped_stamps_keep_accounting_additive() {
        // A /healthz request never touches a batch queue.
        let started = Instant::now();
        let mut trace = RequestTrace::new(9, started);
        trace.stamp_at(TraceStamp::HandlerStart, started + Duration::from_micros(5));
        trace.stamp_at(
            TraceStamp::ResponseQueued,
            started + Duration::from_micros(40),
        );
        trace.stamp_at(TraceStamp::WriteDone, started + Duration::from_micros(60));
        let stages = trace.stage_durations();
        assert_eq!(stages.len(), 3);
        let total: Duration = stages.iter().map(|(_, d)| *d).sum();
        assert_eq!(total, Duration::from_micros(60));
    }

    #[test]
    fn restamping_is_ignored() {
        let started = Instant::now();
        let mut trace = RequestTrace::new(1, started);
        trace.stamp_at(TraceStamp::Scored, started + Duration::from_micros(100));
        trace.stamp_at(TraceStamp::Scored, started + Duration::from_micros(999));
        assert_eq!(
            trace.offset(TraceStamp::Scored),
            Some(Duration::from_micros(100))
        );
    }

    #[test]
    fn slow_ring_keeps_the_slowest_and_floors_fast_traces() {
        let obs = Obs::new();
        let started = Instant::now();
        // 100 traces with totals 1..=100 ms: only the 32 slowest survive.
        for ms in 1..=100u64 {
            let mut trace = obs.begin_trace(started);
            trace.endpoint = "predict";
            trace.stamp_at(TraceStamp::WriteDone, started + Duration::from_millis(ms));
            obs.finalize(&trace);
        }
        let document = obs.slow_traces().to_json();
        let traces = document.get("traces").unwrap().as_array().unwrap();
        assert_eq!(traces.len(), SLOW_TRACES);
        let totals: Vec<f64> = traces
            .iter()
            .map(|t| t.get("total_us").unwrap().as_f64().unwrap())
            .collect();
        // Slowest first, and exactly the top 32 of 1..=100 ms.
        assert!(totals.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(totals[0], 100_000.0);
        assert_eq!(
            *totals.last().unwrap(),
            (100 - SLOW_TRACES as u64 + 1) as f64 * 1_000.0
        );
    }

    #[test]
    fn trace_ids_are_distinct() {
        let obs = Obs::new();
        let started = Instant::now();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(obs.begin_trace(started).id));
        }
    }

    #[test]
    fn finalize_records_stage_histograms_per_endpoint() {
        let obs = Obs::new();
        let started = Instant::now();
        let mut trace = obs.begin_trace(started);
        trace.endpoint = "predict";
        trace.stamp_at(
            TraceStamp::HandlerStart,
            started + Duration::from_micros(10),
        );
        trace.stamp_at(TraceStamp::WriteDone, started + Duration::from_micros(50));
        obs.finalize(&trace);
        let dispatch = obs.stage_snapshot("predict", TraceStamp::HandlerStart as usize);
        assert_eq!(dispatch.count(), 1);
        assert_eq!(dispatch.percentile(0.5), Some(10));
        let write = obs.stage_snapshot("predict", TraceStamp::WriteDone as usize);
        assert_eq!(write.percentile(0.5), Some(40));
        // Other endpoints untouched.
        assert_eq!(obs.stage_snapshot("healthz", 0).count(), 0);
        let stages = obs.stages_json();
        assert!(stages.get("predict").is_some());
        assert_eq!(stages.get("healthz"), None);
    }

    #[test]
    fn exposition_validator_accepts_own_output_and_rejects_breakage() {
        let histogram = LogHistogram::new();
        for v in [10u64, 200, 3_000] {
            histogram.record(v);
        }
        let mut text = String::from(
            "# HELP holistix_test_us A test histogram.\n# TYPE holistix_test_us histogram\n",
        );
        append_histogram(
            &mut text,
            "holistix_test_us",
            "kind=\"LR\"",
            &histogram.snapshot(),
        );
        text.push_str("# TYPE holistix_up gauge\nholistix_up 1\n");
        validate_exposition(&text).expect("well-formed exposition");

        // A TYPE line with no samples.
        let orphan = format!("{text}# TYPE holistix_ghost counter\n");
        assert!(validate_exposition(&orphan)
            .unwrap_err()
            .contains("no samples"));

        // Buckets that do not end in +Inf.
        let truncated = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate_exposition(truncated).unwrap_err().contains("+Inf"));

        // Non-cumulative buckets.
        let shrinking =
            "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
        assert!(validate_exposition(shrinking)
            .unwrap_err()
            .contains("not cumulative"));
    }
}
