//! Admission control: the layer that says "no" before overload says it for us.
//!
//! PR 6's multiplexer accepts thousands of keep-alive clients on a handful of
//! threads, which made unbounded intake the next wall: nothing bounded the
//! per-kind batch queues, so a traffic spike grew them without limit and every
//! client collapsed at once. This module adds the four bounds, outermost to
//! innermost:
//!
//! 1. **Global intake valve** — when the aggregate depth across every batch
//!    queue reaches [`AdmissionConfig::global_intake_limit`], pollers withdraw
//!    read interest from *every* connection (and stop accepting), exactly the
//!    mechanism `MAX_PIPELINED` already uses per connection: backpressure
//!    lands in the kernel's receive buffers, not server memory. The valve
//!    reopens as soon as batches drain below the limit.
//! 2. **Per-client token bucket** — each connection owns a [`TokenBucket`]
//!    (when [`AdmissionConfig::rate_limit`] is set): `burst` tokens capacity,
//!    refilled at `rate_per_s` tokens per second, one token per request. A
//!    request that finds the bucket empty is answered `429` with
//!    `Retry-After` directly by the poller — it never reaches a handler.
//! 3. **Graceful degradation** — `/explain` costs hundreds of LIME scoring
//!    calls per request, so it sheds first: once aggregate queue depth
//!    reaches [`AdmissionConfig::explain_shed_depth`] (below the intake
//!    limit), `/explain` answers `429` while `/predict` still serves.
//! 4. **Per-kind queue caps** — each batch queue rejects at enqueue once its
//!    depth would exceed [`AdmissionConfig::max_queue_depth`]; the request
//!    draws `429` + `Retry-After`. One saturated kind sheds alone — the
//!    other kinds' queues admit normally (cross-kind isolation).
//!
//! `429 Too Many Requests` always means *the server is healthy but full —
//! back off and retry*; `503 Service Unavailable` is reserved for the reload
//! path (a swapped-in registry dropped the model) and shutdown. Every shed is
//! counted per endpoint and reason in
//! [`AdmissionMetrics`](crate::metrics::AdmissionMetrics) and surfaced by
//! `GET /metrics` in both JSON and Prometheus form.

use crate::metrics::ServeMetrics;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-client rate-limit knobs: a classic token bucket.
///
/// Units: `burst` is in requests (the bucket's capacity, also its initial
/// fill), `rate_per_s` in requests per second (the refill rate). A client may
/// send `burst` requests instantly, then sustain `rate_per_s`; over any window
/// of `t` seconds at most `burst + rate_per_s·t` requests are admitted — the
/// invariant the property tests pin. `rate_per_s: 0.0` never refills: the
/// bucket admits exactly `burst` requests per connection, ever (what the
/// deterministic tests and the CI smoke use).
#[derive(Debug, Clone, Copy)]
pub struct RateLimitConfig {
    /// Refill rate, tokens (requests) per second.
    pub rate_per_s: f64,
    /// Bucket capacity, tokens; also the initial fill.
    pub burst: f64,
}

/// Admission-control knobs, configured via
/// [`ServeConfig::admission`](crate::ServeConfig). Defaults are permissive —
/// caps far above anything the test workloads reach — so admission is
/// invisible until configured tighter.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Most jobs (texts) one kind's batch queue may hold, queued or being
    /// scored. An enqueue that would exceed this draws `429 + Retry-After`.
    pub max_queue_depth: usize,
    /// Aggregate queue depth (summed over every kind) at which the global
    /// intake valve closes: pollers stop reading every connection and stop
    /// accepting until batches drain below the limit.
    pub global_intake_limit: usize,
    /// Aggregate queue depth at which `/explain` sheds (`429`). Set below
    /// [`max_queue_depth`](Self::max_queue_depth) so explanations shed while
    /// predictions still serve.
    pub explain_shed_depth: usize,
    /// Per-connection token bucket; `None` (the default) disables per-client
    /// rate limiting.
    pub rate_limit: Option<RateLimitConfig>,
    /// The `Retry-After` hint (whole seconds, minimum 1) on every shed
    /// response.
    pub retry_after: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_queue_depth: 1024,
            global_intake_limit: 4096,
            explain_shed_depth: 512,
            rate_limit: None,
            retry_after: Duration::from_secs(1),
        }
    }
}

/// A token bucket with an explicit clock: every operation takes `now`, so
/// tests drive it over a synthetic schedule with no real sleeping. Created
/// full (at `burst`); [`try_take`](Self::try_take) refills for the elapsed
/// time, then takes one token or refuses.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_s: f64,
    burst: f64,
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    /// A full bucket. `rate_per_s` and `burst` are clamped non-negative.
    pub fn new(rate_per_s: f64, burst: f64, now: Instant) -> Self {
        let burst = burst.max(0.0);
        Self {
            rate_per_s: rate_per_s.max(0.0),
            burst,
            tokens: burst,
            refilled: now,
        }
    }

    /// Credit the refill earned since the last call. Time never runs
    /// backwards here: a `now` before the last refill instant is ignored
    /// rather than rewinding the clock (which would double-count the
    /// interval on the next call).
    fn refill(&mut self, now: Instant) {
        if now <= self.refilled {
            return;
        }
        let elapsed = now.duration_since(self.refilled).as_secs_f64();
        self.tokens = (self.tokens + self.rate_per_s * elapsed).min(self.burst);
        self.refilled = now;
    }

    /// Take one token if available. Refills first, so a bucket that was empty
    /// recovers as time passes.
    pub fn try_take(&mut self, now: Instant) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently in the bucket (as of the last refill; call
    /// [`try_take`](Self::try_take) or observe after it for a fresh value).
    /// Always within `[0, burst]` — the monotone-refill property test pins
    /// this across arbitrary take/refill interleavings.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// The bucket's capacity.
    pub fn burst(&self) -> f64 {
        self.burst
    }
}

/// The shared admission policy: one per server, consulted by pollers (intake
/// valve, per-connection buckets) and handlers (explain shedding, retry
/// hints). All live state it reads — aggregate queue depth — and all state it
/// writes — the valve gauge, shed counters — lives in [`ServeMetrics`], so
/// `/metrics` and the policy can never disagree.
pub struct Admission {
    config: AdmissionConfig,
    metrics: Arc<ServeMetrics>,
}

impl Admission {
    /// Wrap a config and the server's metrics sink; echoes the limits into
    /// the metrics so `/metrics` reports the active configuration.
    pub fn new(config: AdmissionConfig, metrics: Arc<ServeMetrics>) -> Self {
        metrics.admission().set_limits(
            config.max_queue_depth as u64,
            config.global_intake_limit as u64,
            config.explain_shed_depth as u64,
            config.rate_limit.map(|r| (r.rate_per_s, r.burst)),
        );
        Self { config, metrics }
    }

    /// The active configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// The `Retry-After` value for shed responses, whole seconds, at least 1
    /// (a zero would tell clients to hammer).
    pub fn retry_after_secs(&self) -> u64 {
        self.config.retry_after.as_secs().max(1)
    }

    /// A fresh bucket for a newly accepted connection, or `None` when rate
    /// limiting is off. Keyed on connection identity by construction: every
    /// connection gets its own bucket at accept, reconnecting mints a new one.
    pub fn new_bucket(&self, now: Instant) -> Option<TokenBucket> {
        self.config
            .rate_limit
            .map(|r| TokenBucket::new(r.rate_per_s, r.burst, now))
    }

    /// Whether `/explain` should shed right now (aggregate queue pressure at
    /// or past the explain threshold).
    pub fn should_shed_explain(&self) -> bool {
        self.metrics.aggregate_queue_depth() >= self.config.explain_shed_depth as u64
    }

    /// Whether pollers may read (and accept) right now. Also maintains the
    /// valve gauge and the open→closed transition counter in the metrics, so
    /// the check is cheap enough to run once per poll round.
    pub fn intake_open(&self) -> bool {
        let closed = self.metrics.aggregate_queue_depth() >= self.config.global_intake_limit as u64;
        self.metrics.admission().set_intake_closed(closed);
        !closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_admits_burst_then_refuses_until_refill() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(10.0, 3.0, start);
        for i in 0..3 {
            assert!(bucket.try_take(start), "burst token {i}");
        }
        assert!(!bucket.try_take(start), "bucket must be empty");
        // 10 tokens/s: 100 ms refills one token, and only one.
        let later = start + Duration::from_millis(100);
        assert!(bucket.try_take(later));
        assert!(!bucket.try_take(later));
    }

    #[test]
    fn bucket_caps_refill_at_burst() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(1000.0, 2.0, start);
        // An hour idle refills to burst, not to rate·elapsed.
        let later = start + Duration::from_secs(3600);
        assert!(bucket.try_take(later));
        assert!(bucket.try_take(later));
        assert!(!bucket.try_take(later));
    }

    #[test]
    fn zero_rate_bucket_is_burst_only() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(0.0, 2.0, start);
        assert!(bucket.try_take(start));
        assert!(bucket.try_take(start));
        // No refill ever, no matter how long we wait.
        assert!(!bucket.try_take(start + Duration::from_secs(1000)));
    }

    #[test]
    fn bucket_ignores_time_running_backwards() {
        let start = Instant::now();
        let later = start + Duration::from_secs(1);
        let mut bucket = TokenBucket::new(1.0, 1.0, later);
        assert!(bucket.try_take(later));
        // A stale `now` must not rewind the refill clock (double-crediting
        // the interval on the next call) — and must not panic.
        assert!(!bucket.try_take(start));
        assert!(!bucket.try_take(later + Duration::from_millis(500)));
        assert!(bucket.try_take(later + Duration::from_secs(1)));
    }

    #[test]
    fn defaults_are_permissive_and_retry_after_is_at_least_one() {
        let config = AdmissionConfig::default();
        assert!(config.rate_limit.is_none());
        assert!(config.explain_shed_depth < config.max_queue_depth);
        assert!(config.max_queue_depth < config.global_intake_limit);
        let admission = Admission::new(
            AdmissionConfig {
                retry_after: Duration::from_millis(10),
                ..AdmissionConfig::default()
            },
            Arc::new(ServeMetrics::new()),
        );
        assert_eq!(admission.retry_after_secs(), 1);
        assert!(admission.new_bucket(Instant::now()).is_none());
        assert!(admission.intake_open());
        assert!(!admission.should_shed_explain());
    }
}
