//! Readiness polling over `std`-only primitives.
//!
//! The connection multiplexer needs one thing the standard library does not
//! wrap: "block until any of these sockets is readable or writable". The
//! build is offline (no mio/tokio), so this module hand-rolls it the same way
//! `http.rs` hand-rolls HTTP/1.1 — a thin safe wrapper over the `poll(2)`
//! symbol that `std` already links on every Unix target. No event-loop
//! framework, no epoll registration lifecycle: [`PollSet`] is rebuilt from
//! the live connection table before each wait, which keeps the unsafe surface
//! to a single FFI call and makes the poller trivially correct under
//! connection churn (a closed fd is simply never submitted again).
//!
//! [`Waker`] is the cross-thread wakeup: a nonblocking `UnixStream` pair
//! whose read end sits in the poll set. Handler threads finish a request,
//! push the completion, and [`wake`](Waker::wake) the owning poller; writes
//! to an already-signalled waker hit `WouldBlock` and are dropped — the
//! poller is waking anyway, which makes `wake` O(1), lock-free and
//! infallible.
//!
//! lint: no_panic — this file is event-loop core: a panic here kills a
//! poller thread and silently orphans every connection it owns, so panicking
//! constructs are forbidden (enforced by holistix-lint).

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// `struct pollfd` from `poll(2)`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    /// `poll(2)` — provided by libc, which `std` already links on Unix.
    /// `nfds_t` is `c_ulong` on Linux.
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// What a poll-set entry wants to be woken for.
///
/// Withdrawing `read` interest is the server's only backpressure primitive:
/// unread bytes stay in the kernel socket buffer and eventually stall the
/// peer's TCP send window. Per-connection pipelining caps use it, and the
/// global intake valve (`admission`) applies the same trick set-wide — when
/// the aggregate queue depth trips the limit, the poller rebuilds its set
/// with `read: false` everywhere (listener included) until the backlog
/// drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };

    fn events(self) -> i16 {
        let mut events = 0;
        if self.read {
            events |= POLLIN;
        }
        if self.write {
            events |= POLLOUT;
        }
        events
    }
}

/// One ready fd, by the caller's token.
#[derive(Debug, Clone, Copy)]
pub struct ReadyEvent {
    /// The token the fd was submitted with.
    pub token: usize,
    /// The fd has bytes to read (or a hangup/error to observe via `read`).
    pub readable: bool,
    /// The fd can accept more bytes.
    pub writable: bool,
}

/// A rebuilt-per-wait set of fds to poll. `push` interests, `wait`, iterate
/// [`ready`](PollSet::ready), `clear`, repeat.
#[derive(Debug, Default)]
pub struct PollSet {
    fds: Vec<PollFd>,
    tokens: Vec<usize>,
}

impl PollSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all entries (keeps allocations for the next round).
    pub fn clear(&mut self) {
        self.fds.clear();
        self.tokens.clear();
    }

    /// Submit `fd` with the given interest, tagged with `token`.
    pub fn push(&mut self, fd: RawFd, interest: Interest, token: usize) {
        self.fds.push(PollFd {
            fd,
            events: interest.events(),
            revents: 0,
        });
        self.tokens.push(token);
    }

    /// Block until at least one fd is ready or `timeout` elapses. Returns the
    /// number of ready fds (0 on timeout). `EINTR` is treated as a timeout —
    /// the caller's loop re-polls.
    pub fn wait(&mut self, timeout: Duration) -> io::Result<usize> {
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        // SAFETY: `fds` is a live, exclusively borrowed Vec of `#[repr(C)]`
        // structs matching `struct pollfd`, so the pointer is valid for
        // reads and writes of `len` entries for the whole call; `poll(2)`
        // only mutates the `revents` field of those entries and accesses no
        // memory beyond them.
        let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as u64, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        Err(err)
    }

    /// The entries the last [`wait`](PollSet::wait) reported ready. Hangups
    /// and errors surface as `readable`, so the owner observes them through
    /// an ordinary `read` returning EOF or an error.
    pub fn ready(&self) -> impl Iterator<Item = ReadyEvent> + '_ {
        self.fds
            .iter()
            .zip(&self.tokens)
            .filter(|(fd, _)| fd.revents != 0)
            .map(|(fd, &token)| ReadyEvent {
                token,
                readable: fd.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0,
                writable: fd.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
            })
    }
}

/// The write half of a poller's wakeup channel. Cloneable and cheap to wake;
/// see the module docs.
#[derive(Debug, Clone)]
pub struct Waker {
    writer: Arc<UnixStream>,
}

impl Waker {
    /// Wake the poller that holds the paired [`WakeReader`]. Never blocks:
    /// once the pipe is full the poller has an unconsumed wakeup pending, so
    /// dropping the write is correct.
    pub fn wake(&self) {
        let _ = (&*self.writer).write(&[1]);
    }
}

/// The read half of a poller's wakeup channel: lives in that poller's
/// [`PollSet`].
#[derive(Debug)]
pub struct WakeReader {
    reader: UnixStream,
}

impl WakeReader {
    /// The fd to submit to the poll set (with [`Interest::READ`]).
    pub fn fd(&self) -> RawFd {
        self.reader.as_raw_fd()
    }

    /// Consume all pending wakeups so the next `wait` blocks again.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        while matches!((&self.reader).read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// A connected waker pair: the [`Waker`] goes to handler threads (and the
/// server handle, for shutdown), the [`WakeReader`] into the poller's set.
pub fn waker_pair() -> io::Result<(Waker, WakeReader)> {
    let (writer, reader) = UnixStream::pair()?;
    writer.set_nonblocking(true)?;
    reader.set_nonblocking(true)?;
    Ok((
        Waker {
            writer: Arc::new(writer),
        },
        WakeReader { reader },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn wait_times_out_when_nothing_is_ready() {
        let (_waker, reader) = waker_pair().unwrap();
        let mut set = PollSet::new();
        set.push(reader.fd(), Interest::READ, 7);
        let started = Instant::now();
        let n = set.wait(Duration::from_millis(30)).unwrap();
        assert_eq!(n, 0);
        assert!(started.elapsed() >= Duration::from_millis(25));
        assert_eq!(set.ready().count(), 0);
    }

    #[test]
    fn waker_makes_the_reader_ready() {
        let (waker, reader) = waker_pair().unwrap();
        let mut set = PollSet::new();
        set.push(reader.fd(), Interest::READ, 42);
        waker.wake();
        let n = set.wait(Duration::from_secs(5)).unwrap();
        assert_eq!(n, 1);
        let event = set.ready().next().unwrap();
        assert_eq!(event.token, 42);
        assert!(event.readable);
        // Drained, the set blocks again.
        reader.drain();
        set.clear();
        set.push(reader.fd(), Interest::READ, 42);
        assert_eq!(set.wait(Duration::from_millis(10)).unwrap(), 0);
    }

    #[test]
    fn repeated_wakes_never_block_and_coalesce() {
        let (waker, reader) = waker_pair().unwrap();
        // Far more wakes than the pipe buffers: the extras must drop, not block.
        for _ in 0..100_000 {
            waker.wake();
        }
        let mut set = PollSet::new();
        set.push(reader.fd(), Interest::READ, 0);
        assert_eq!(set.wait(Duration::from_secs(1)).unwrap(), 1);
        reader.drain();
        set.clear();
        set.push(reader.fd(), Interest::READ, 0);
        assert_eq!(set.wait(Duration::from_millis(10)).unwrap(), 0);
    }

    #[test]
    fn write_interest_reports_writable_sockets() {
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut set = PollSet::new();
        set.push(
            a.as_raw_fd(),
            Interest {
                read: false,
                write: true,
            },
            1,
        );
        assert_eq!(set.wait(Duration::from_secs(1)).unwrap(), 1);
        assert!(set.ready().next().unwrap().writable);
    }
}
