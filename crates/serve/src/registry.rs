//! The warm-model registry: fitted baselines held in memory for the lifetime
//! of the server.
//!
//! Fitting a baseline (vectoriser + classifier, or a transformer fine-tune) is
//! seconds-to-minutes of work; serving a request against a fitted model is
//! microseconds-to-milliseconds. The registry pays the fitting cost once at
//! startup — one crossbeam scoped thread per requested [`BaselineKind`] — and
//! hands out `Arc<FittedBaseline>` clones to the batcher and the `/explain`
//! handlers for the rest of the process lifetime.

use holistix::{BaselineKind, FittedBaseline, SpeedProfile};
use holistix_corpus::HolistixCorpus;
use std::sync::Arc;

/// How a registry is trained at startup.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Which baselines to fit and keep warm.
    pub kinds: Vec<BaselineKind>,
    /// Training cost profile.
    pub profile: SpeedProfile,
    /// Size of the synthetic training corpus (for [`ModelRegistry::fit_synthetic`]).
    pub training_posts: usize,
    /// Seed for corpus generation and model fitting.
    pub seed: u64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            kinds: BaselineKind::CLASSICAL.to_vec(),
            profile: SpeedProfile::Fast,
            training_posts: 400,
            seed: 42,
        }
    }
}

/// Warm fitted baselines, keyed by [`BaselineKind`]. Immutable once built;
/// every model is behind an `Arc` so request handlers and the batcher share
/// them without copies.
pub struct ModelRegistry {
    entries: Vec<(BaselineKind, Arc<FittedBaseline>)>,
}

impl ModelRegistry {
    /// Fit every configured baseline on a synthetic Holistix corpus. This is
    /// the offline-friendly startup path; a deployment with the real corpus
    /// would read JSONL via `holistix_corpus::io` and call [`Self::fit`].
    pub fn fit_synthetic(config: &RegistryConfig) -> Self {
        let corpus = HolistixCorpus::generate_small(config.training_posts, config.seed);
        let texts = corpus.texts();
        let labels = corpus.label_indices();
        Self::fit(&config.kinds, config.profile, &texts, &labels, config.seed)
    }

    /// Fit the given baselines on explicit training data, one scoped thread per
    /// kind (the same fan-out pattern the cross-validation driver uses for
    /// folds). Panics if `kinds` is empty — a server with no models cannot
    /// answer anything.
    pub fn fit(
        kinds: &[BaselineKind],
        profile: SpeedProfile,
        texts: &[&str],
        labels: &[usize],
        seed: u64,
    ) -> Self {
        assert!(!kinds.is_empty(), "registry needs at least one baseline");
        let entries = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = kinds
                .iter()
                .map(|&kind| {
                    scope.spawn(move |_| {
                        (
                            kind,
                            Arc::new(FittedBaseline::fit(kind, profile, texts, labels, seed)),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("model fitting thread panicked"))
                .collect::<Vec<_>>()
        })
        .expect("model fitting scope failed");
        Self { entries }
    }

    /// A registry around already-fitted models (used by tests that need to
    /// compare server responses against direct model calls).
    pub fn from_fitted(entries: Vec<(BaselineKind, Arc<FittedBaseline>)>) -> Self {
        assert!(!entries.is_empty(), "registry needs at least one baseline");
        Self { entries }
    }

    /// The warm model for a kind, if registered.
    pub fn get(&self, kind: BaselineKind) -> Option<Arc<FittedBaseline>> {
        self.entries
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, m)| Arc::clone(m))
    }

    /// The registered kinds, in registration order.
    pub fn kinds(&self) -> Vec<BaselineKind> {
        self.entries.iter().map(|(k, _)| *k).collect()
    }

    /// The default model: the first registered one.
    pub fn default_kind(&self) -> BaselineKind {
        self.entries[0].0
    }

    /// Resolve a request's optional `model` field to a warm model. `None`
    /// selects the default; unknown names and unregistered kinds are errors
    /// that list what is available.
    pub fn resolve(
        &self,
        name: Option<&str>,
    ) -> Result<(BaselineKind, Arc<FittedBaseline>), String> {
        let kind = match name {
            None => self.default_kind(),
            Some(name) => parse_kind(name).ok_or_else(|| {
                format!(
                    "unknown model {name:?}; registered models: {}",
                    self.registered_names()
                )
            })?,
        };
        match self.get(kind) {
            Some(model) => Ok((kind, model)),
            None => Err(format!(
                "model {:?} is not loaded; registered models: {}",
                kind.name(),
                self.registered_names()
            )),
        }
    }

    fn registered_names(&self) -> String {
        self.entries
            .iter()
            .map(|(k, _)| format!("{:?}", k.name()))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Parse a model name: the Table IV row labels (`"LR"`, `"Linear SVM"`,
/// `"Gaussian NB"`, `"BERT"`, …) case-insensitively, plus a few obvious
/// aliases for the classical models.
pub fn parse_kind(name: &str) -> Option<BaselineKind> {
    let lower = name.trim().to_ascii_lowercase();
    match lower.as_str() {
        "lr" | "logistic" | "logistic regression" | "logistic_regression" => {
            return Some(BaselineKind::LogisticRegression)
        }
        "svm" | "linear svm" | "linear_svm" => return Some(BaselineKind::LinearSvm),
        "nb" | "gaussian nb" | "gaussian_nb" | "naive bayes" | "naive_bayes" => {
            return Some(BaselineKind::GaussianNb)
        }
        _ => {}
    }
    BaselineKind::ALL
        .into_iter()
        .find(|kind| kind.name().eq_ignore_ascii_case(&lower))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_registry() -> ModelRegistry {
        ModelRegistry::fit_synthetic(&RegistryConfig {
            kinds: vec![BaselineKind::LogisticRegression, BaselineKind::GaussianNb],
            profile: SpeedProfile::Tiny,
            training_posts: 90,
            seed: 7,
        })
    }

    #[test]
    fn fits_and_serves_warm_models() {
        let registry = tiny_registry();
        assert_eq!(
            registry.kinds(),
            vec![BaselineKind::LogisticRegression, BaselineKind::GaussianNb]
        );
        let model = registry.get(BaselineKind::LogisticRegression).unwrap();
        let proba = model.probabilities_one("i feel alone and exhausted");
        assert_eq!(proba.len(), 6);
        assert!(registry.get(BaselineKind::LinearSvm).is_none());
    }

    #[test]
    fn resolve_defaults_to_first_registered_model() {
        let registry = tiny_registry();
        let (kind, _) = registry.resolve(None).unwrap();
        assert_eq!(kind, BaselineKind::LogisticRegression);
        let (kind, _) = registry.resolve(Some("gaussian nb")).unwrap();
        assert_eq!(kind, BaselineKind::GaussianNb);
    }

    #[test]
    fn resolve_rejects_unknown_and_unloaded_models() {
        let registry = tiny_registry();
        let unknown = registry.resolve(Some("resnet")).err().unwrap();
        assert!(unknown.contains("unknown model"), "{unknown}");
        let unloaded = registry.resolve(Some("Linear SVM")).err().unwrap();
        assert!(unloaded.contains("not loaded"), "{unloaded}");
    }

    #[test]
    fn parse_kind_accepts_table_names_and_aliases() {
        use holistix::transformer::ModelKind;
        assert_eq!(parse_kind("LR"), Some(BaselineKind::LogisticRegression));
        assert_eq!(parse_kind("linear svm"), Some(BaselineKind::LinearSvm));
        assert_eq!(parse_kind(" NB "), Some(BaselineKind::GaussianNb));
        assert_eq!(
            parse_kind("mentalbert"),
            Some(BaselineKind::Transformer(ModelKind::MentalBert))
        );
        assert_eq!(parse_kind("resnet"), None);
    }
}
