//! The warm-model registry: fitted scorers held in memory for the lifetime
//! of the server, behind an atomically swappable handle.
//!
//! Fitting a model (vectoriser + classifier, or a transformer fine-tune) is
//! seconds-to-minutes of work; serving a request against a fitted model is
//! microseconds-to-milliseconds. The registry pays the fitting cost up front —
//! one crossbeam scoped thread per requested [`BaselineKind`], each classical
//! fit itself sharded across its slice of the machine's
//! [`ThreadBudget`](holistix::ml::ThreadBudget) — and hands out
//! `Arc<dyn Scorer>` clones to the batch queues and the `/explain` handlers.
//!
//! Since the `Scorer` API redesign the registry is backend-agnostic: it stores
//! [`Arc<dyn Scorer>`](Scorer), so a classical sparse pipeline, a
//! transformer analogue and any future backend (or a test stub) serve behind
//! the same lookup, and the per-kind batch queues size themselves from each
//! scorer's [`cost_hint`](Scorer::cost_hint). Heterogeneous entries come in
//! through [`ModelRegistry::from_scorers`].
//!
//! A registry is immutable once built; *replacement* is what [`SharedRegistry`]
//! adds. `POST /reload` fits a fresh [`ModelRegistry`] off-thread and
//! [`swap`](SharedRegistry::swap)s it in: readers grab an `Arc` per request (or
//! per batch), so in-flight work finishes on the registry it started with and
//! new work sees the new models, with no lock held across a fit or a score.

use holistix::ml::{scoped_map, ThreadBudget};
use holistix::{fit_scorer, BaselineKind, Scorer, SpeedProfile};
use holistix_corpus::HolistixCorpus;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// How a registry is trained at startup.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Which baselines to fit and keep warm.
    pub kinds: Vec<BaselineKind>,
    /// Training cost profile.
    pub profile: SpeedProfile,
    /// Size of the synthetic training corpus (for [`ModelRegistry::fit_synthetic`]).
    pub training_posts: usize,
    /// Seed for corpus generation and model fitting.
    pub seed: u64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            kinds: BaselineKind::CLASSICAL.to_vec(),
            profile: SpeedProfile::Fast,
            training_posts: 400,
            seed: 42,
        }
    }
}

/// Statistics from the most recent registry fit, exposed by `GET /metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitStats {
    /// Wall-clock time of the whole fit (all kinds, fan-out included).
    pub duration: Duration,
    /// Vectoriser fit shards each classical kind used.
    pub shards: usize,
    /// Number of training documents.
    pub corpus_size: usize,
}

impl FitStats {
    fn none() -> Self {
        Self {
            duration: Duration::ZERO,
            shards: 0,
            corpus_size: 0,
        }
    }
}

/// Warm fitted scorers, keyed by [`BaselineKind`]. Immutable once built;
/// every scorer is behind an `Arc<dyn Scorer>` so request handlers and the
/// batch queues share them without copies — and without knowing the backend.
/// Replacement happens one level up, in [`SharedRegistry`].
pub struct ModelRegistry {
    entries: Vec<(BaselineKind, Arc<dyn Scorer>)>,
    profile: SpeedProfile,
    seed: u64,
    stats: FitStats,
}

impl ModelRegistry {
    /// Fit every configured baseline on a synthetic Holistix corpus. This is
    /// the offline-friendly startup path; a deployment with the real corpus
    /// would read JSONL via `corpus::io` and call [`Self::fit`] — or upload it
    /// to a running server via `POST /reload`.
    pub fn fit_synthetic(config: &RegistryConfig) -> Self {
        let corpus = HolistixCorpus::generate_small(config.training_posts, config.seed);
        let texts = corpus.texts();
        let labels = corpus.label_indices();
        Self::fit(&config.kinds, config.profile, &texts, &labels, config.seed)
    }

    /// Fit the given baselines on explicit training data with the machine's
    /// thread budget. See [`Self::fit_budgeted`].
    pub fn fit(
        kinds: &[BaselineKind],
        profile: SpeedProfile,
        texts: &[&str],
        labels: &[usize],
        seed: u64,
    ) -> Self {
        Self::fit_budgeted(kinds, profile, texts, labels, seed, ThreadBudget::machine())
    }

    /// Fit the given baselines on explicit training data, one scoped thread
    /// per kind (the same fan-out pattern the cross-validation driver uses for
    /// folds), with each classical kind's vectoriser fit sharded across its
    /// slice of `budget` (`kinds × shards ≤ budget.threads`). Every kind goes
    /// through [`fit_scorer`], so classical kinds come back as sparse
    /// [`FittedBaseline`](holistix::FittedBaseline)s and transformer kinds as
    /// [`TransformerScorer`](holistix::TransformerScorer)s. Panics if `kinds`
    /// is empty — a server with no models cannot answer anything.
    pub fn fit_budgeted(
        kinds: &[BaselineKind],
        profile: SpeedProfile,
        texts: &[&str],
        labels: &[usize],
        seed: u64,
        budget: ThreadBudget,
    ) -> Self {
        assert!(!kinds.is_empty(), "registry needs at least one baseline");
        let shards = budget.shards_per_fold(kinds.len());
        let started = Instant::now();
        let entries = scoped_map(kinds, |&kind| {
            (kind, fit_scorer(kind, profile, texts, labels, seed, shards))
        });
        Self {
            entries,
            profile,
            seed,
            stats: FitStats {
                duration: started.elapsed(),
                shards,
                corpus_size: texts.len(),
            },
        }
    }

    /// Fit a fresh registry with this registry's kinds, profile and seed on a
    /// new training corpus, using the machine's full thread budget. The
    /// receiver is untouched; the caller swaps the result into a
    /// [`SharedRegistry`] when ready.
    pub fn refit(&self, texts: &[&str], labels: &[usize]) -> Self {
        self.refit_budgeted(texts, labels, ThreadBudget::machine())
    }

    /// [`refit`](Self::refit) with an explicit thread budget — the `/reload`
    /// path passes a reduced budget so a background refit does not starve the
    /// threads serving live traffic.
    pub fn refit_budgeted(&self, texts: &[&str], labels: &[usize], budget: ThreadBudget) -> Self {
        Self::fit_budgeted(
            &self.kinds(),
            self.profile,
            texts,
            labels,
            self.seed,
            budget,
        )
    }

    /// A registry around already-fitted scorers, keyed by each scorer's own
    /// [`kind`](Scorer::kind). The heterogeneity entry point: mix classical
    /// baselines, transformer scorers and test stubs in one registry (the
    /// slow-scorer isolation test registers a deliberately slow stub next to
    /// LR this way). Panics on an empty list or on duplicate kinds.
    pub fn from_scorers(scorers: Vec<Arc<dyn Scorer>>) -> Self {
        assert!(!scorers.is_empty(), "registry needs at least one scorer");
        let entries: Vec<(BaselineKind, Arc<dyn Scorer>)> =
            scorers.into_iter().map(|s| (s.kind(), s)).collect();
        for (i, (kind, _)) in entries.iter().enumerate() {
            assert!(
                entries[..i].iter().all(|(k, _)| k != kind),
                "duplicate scorer for kind {:?}",
                kind.name()
            );
        }
        Self {
            entries,
            profile: SpeedProfile::Fast,
            seed: 0,
            stats: FitStats::none(),
        }
    }

    /// Statistics of the fit that produced this registry (zeroed for
    /// [`Self::from_scorers`]).
    pub fn fit_stats(&self) -> FitStats {
        self.stats
    }

    /// The training cost profile the registry was fitted under.
    pub fn profile(&self) -> SpeedProfile {
        self.profile
    }

    /// The warm scorer for a kind, if registered.
    pub fn get(&self, kind: BaselineKind) -> Option<Arc<dyn Scorer>> {
        self.entries
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, m)| Arc::clone(m))
    }

    /// The registered kinds, in registration order.
    pub fn kinds(&self) -> Vec<BaselineKind> {
        self.entries.iter().map(|(k, _)| *k).collect()
    }

    /// `(kind, scorer)` pairs in registration order — what the server iterates
    /// to spawn one batch queue per registered scorer.
    pub fn scorers(&self) -> impl Iterator<Item = (BaselineKind, &Arc<dyn Scorer>)> {
        self.entries.iter().map(|(k, s)| (*k, s))
    }

    /// The default model: the first registered one.
    pub fn default_kind(&self) -> BaselineKind {
        self.entries[0].0
    }

    /// Resolve a request's optional `model` field to a warm scorer. `None`
    /// selects the default; unknown names and unregistered kinds are errors
    /// that list what is available.
    pub fn resolve(&self, name: Option<&str>) -> Result<(BaselineKind, Arc<dyn Scorer>), String> {
        let kind = match name {
            None => self.default_kind(),
            Some(name) => parse_kind(name).ok_or_else(|| {
                format!(
                    "unknown model {name:?}; registered models: {}",
                    self.registered_names()
                )
            })?,
        };
        match self.get(kind) {
            Some(model) => Ok((kind, model)),
            None => Err(format!(
                "model {:?} is not loaded; registered models: {}",
                kind.name(),
                self.registered_names()
            )),
        }
    }

    fn registered_names(&self) -> String {
        self.entries
            .iter()
            .map(|(k, _)| format!("{:?}", k.name()))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// A cheaply cloneable, atomically swappable handle to the current
/// [`ModelRegistry`].
///
/// Readers call [`current`](Self::current) and get an `Arc` pinning whatever
/// registry was live at that instant; [`swap`](Self::swap) replaces the inner
/// `Arc` under a write lock held only for the pointer assignment. A `/reload`
/// therefore never blocks scoring: the fit happens entirely outside the lock,
/// in-flight requests finish on the old registry's models, and the old
/// registry is freed when its last reader drops.
#[derive(Clone)]
pub struct SharedRegistry {
    inner: Arc<RwLock<Arc<ModelRegistry>>>,
}

impl SharedRegistry {
    /// Wrap a fitted registry.
    pub fn new(registry: ModelRegistry) -> Self {
        Self {
            inner: Arc::new(RwLock::new(Arc::new(registry))),
        }
    }

    /// The registry live right now. The returned `Arc` keeps that registry
    /// (and its models) alive through any number of subsequent swaps.
    pub fn current(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.inner.read().expect("registry lock poisoned"))
    }

    /// Atomically replace the current registry. In-flight readers are
    /// unaffected; the next [`current`](Self::current) sees `registry`.
    pub fn swap(&self, registry: ModelRegistry) {
        *self.inner.write().expect("registry lock poisoned") = Arc::new(registry);
    }
}

/// Parse a model name: the Table IV row labels (`"LR"`, `"Linear SVM"`,
/// `"Gaussian NB"`, `"BERT"`, …) case-insensitively, plus a few obvious
/// aliases for the classical models.
pub fn parse_kind(name: &str) -> Option<BaselineKind> {
    let lower = name.trim().to_ascii_lowercase();
    match lower.as_str() {
        "lr" | "logistic" | "logistic regression" | "logistic_regression" => {
            return Some(BaselineKind::LogisticRegression)
        }
        "svm" | "linear svm" | "linear_svm" => return Some(BaselineKind::LinearSvm),
        "nb" | "gaussian nb" | "gaussian_nb" | "naive bayes" | "naive_bayes" => {
            return Some(BaselineKind::GaussianNb)
        }
        _ => {}
    }
    BaselineKind::ALL
        .into_iter()
        .chain(BaselineKind::QUANTIZED)
        .find(|kind| kind.name().eq_ignore_ascii_case(&lower))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_registry() -> ModelRegistry {
        ModelRegistry::fit_synthetic(&RegistryConfig {
            kinds: vec![BaselineKind::LogisticRegression, BaselineKind::GaussianNb],
            profile: SpeedProfile::Tiny,
            training_posts: 90,
            seed: 7,
        })
    }

    #[test]
    fn fits_and_serves_warm_models() {
        let registry = tiny_registry();
        assert_eq!(
            registry.kinds(),
            vec![BaselineKind::LogisticRegression, BaselineKind::GaussianNb]
        );
        let model = registry.get(BaselineKind::LogisticRegression).unwrap();
        let proba = model.probabilities_one("i feel alone and exhausted");
        assert_eq!(proba.len(), 6);
        assert!(registry.get(BaselineKind::LinearSvm).is_none());
    }

    #[test]
    fn resolve_defaults_to_first_registered_model() {
        let registry = tiny_registry();
        let (kind, _) = registry.resolve(None).unwrap();
        assert_eq!(kind, BaselineKind::LogisticRegression);
        let (kind, _) = registry.resolve(Some("gaussian nb")).unwrap();
        assert_eq!(kind, BaselineKind::GaussianNb);
    }

    #[test]
    fn resolve_rejects_unknown_and_unloaded_models() {
        let registry = tiny_registry();
        let unknown = registry.resolve(Some("resnet")).err().unwrap();
        assert!(unknown.contains("unknown model"), "{unknown}");
        let unloaded = registry.resolve(Some("Linear SVM")).err().unwrap();
        assert!(unloaded.contains("not loaded"), "{unloaded}");
    }

    #[test]
    fn fit_records_stats() {
        let registry = tiny_registry();
        let stats = registry.fit_stats();
        // generate_small may round the corpus up to balance classes.
        assert!(stats.corpus_size >= 90);
        assert!(stats.shards >= 1);
        assert!(stats.duration > Duration::ZERO);
        assert_eq!(registry.profile(), SpeedProfile::Tiny);
    }

    #[test]
    fn refit_keeps_kinds_profile_and_seed() {
        let registry = tiny_registry();
        let corpus = HolistixCorpus::generate_small(60, 21);
        let texts = corpus.texts();
        let labels = corpus.label_indices();
        let refitted = registry.refit(&texts, &labels);
        assert_eq!(refitted.kinds(), registry.kinds());
        assert_eq!(refitted.profile(), registry.profile());
        assert_eq!(refitted.fit_stats().corpus_size, texts.len());
        // Refitting with the registry's own original corpus reproduces the
        // models bit for bit (same kinds, profile, seed, data).
        let original = HolistixCorpus::generate_small(90, 7);
        let same = registry.refit(&original.texts(), &original.label_indices());
        let text = "i feel alone and exhausted";
        assert_eq!(
            same.get(BaselineKind::LogisticRegression)
                .unwrap()
                .probabilities_one(text),
            registry
                .get(BaselineKind::LogisticRegression)
                .unwrap()
                .probabilities_one(text),
        );
    }

    #[test]
    fn shared_registry_swaps_while_readers_hold_the_old_arc() {
        let shared = SharedRegistry::new(tiny_registry());
        let before = shared.current();
        assert_eq!(before.kinds().len(), 2);

        let corpus = HolistixCorpus::generate_small(60, 33);
        let texts = corpus.texts();
        let old_size = before.fit_stats().corpus_size;
        assert_ne!(old_size, texts.len());
        let replacement = before.refit(&texts, &corpus.label_indices());
        shared.swap(replacement);

        let after = shared.current();
        // The pinned Arc still answers from the old registry...
        assert_eq!(before.fit_stats().corpus_size, old_size);
        // ...while new readers see the swapped-in one.
        assert_eq!(after.fit_stats().corpus_size, texts.len());
        assert!(!Arc::ptr_eq(&before, &after));
        // Clones of the handle observe the same current registry.
        assert!(Arc::ptr_eq(&shared.clone().current(), &after));
    }

    #[test]
    fn from_scorers_keys_by_scorer_kind() {
        use holistix::FittedBaseline;
        let corpus = HolistixCorpus::generate_small(90, 11);
        let texts = corpus.texts();
        let labels = corpus.label_indices();
        let lr = Arc::new(FittedBaseline::fit(
            BaselineKind::LogisticRegression,
            SpeedProfile::Tiny,
            &texts,
            &labels,
            11,
        ));
        let registry = ModelRegistry::from_scorers(vec![lr.clone() as Arc<dyn Scorer>]);
        assert_eq!(registry.kinds(), vec![BaselineKind::LogisticRegression]);
        assert_eq!(registry.fit_stats(), FitStats::none());
        let served = registry.get(BaselineKind::LogisticRegression).unwrap();
        assert_eq!(
            served.probabilities_one(texts[0]),
            lr.probabilities_one(texts[0])
        );
    }

    #[test]
    #[should_panic(expected = "duplicate scorer")]
    fn from_scorers_rejects_duplicate_kinds() {
        use holistix::FittedBaseline;
        let corpus = HolistixCorpus::generate_small(60, 13);
        let texts = corpus.texts();
        let labels = corpus.label_indices();
        let fit = || -> Arc<dyn Scorer> {
            Arc::new(FittedBaseline::fit(
                BaselineKind::GaussianNb,
                SpeedProfile::Tiny,
                &texts,
                &labels,
                13,
            ))
        };
        let _ = ModelRegistry::from_scorers(vec![fit(), fit()]);
    }

    #[test]
    fn parse_kind_accepts_table_names_and_aliases() {
        use holistix::transformer::ModelKind;
        assert_eq!(parse_kind("LR"), Some(BaselineKind::LogisticRegression));
        assert_eq!(parse_kind("linear svm"), Some(BaselineKind::LinearSvm));
        assert_eq!(parse_kind(" NB "), Some(BaselineKind::GaussianNb));
        assert_eq!(
            parse_kind("mentalbert"),
            Some(BaselineKind::Transformer(ModelKind::MentalBert))
        );
        assert_eq!(parse_kind("resnet"), None);
    }
}
