//! Per-connection state machines for the nonblocking multiplexer, plus the
//! idle-timeout wheel.
//!
//! A [`Connection`] owns one nonblocking socket and everything needed to
//! resume it from any interruption: the incremental
//! [`RequestParser`](crate::http::RequestParser) (request framing picks up
//! wherever the last read fragment stopped), an output buffer with
//! partial-write resumption (a response interrupted by a full socket buffer
//! continues from the exact byte on the next writable event), keep-alive
//! accounting (request cap, reuse metrics), and the pipelining ledger.
//!
//! ## Pipelining
//!
//! Requests are assigned monotonically increasing sequence numbers as they
//! parse; up to [`MAX_PIPELINED`] may be in flight at once, so request `N+1`
//! parses (and dispatches to a handler) while `N`'s batch is still being
//! scored. Responses complete in *any* order — handlers finish whenever their
//! batch queue does — but serialize strictly in sequence order through the
//! [`pending`](Connection) reorder map, so the client always sees answers in
//! the order it asked. At the cap the connection simply stops reading
//! (POLLIN interest is withdrawn), pushing backpressure into the kernel's
//! receive buffer instead of server memory.
//!
//! ## Idle timeout
//!
//! [`TimerWheel`] is a hashed wheel with **lazy revalidation**: connections
//! are scheduled once at accept and the wheel is never touched on activity
//! (no per-request reschedule cost). When an entry fires, the poller
//! re-checks the connection's `last_activity` — a busy connection is simply
//! rescheduled for its remaining lifetime, and only a genuinely idle one is
//! evicted. Stale entries (the slot was reused by a newer connection) are
//! filtered by generation number.
//!
//! lint: no_panic — connection state machines run on poller threads: a panic
//! here kills the thread and orphans its whole connection set, so panicking
//! constructs are forbidden (enforced by holistix-lint).

use crate::admission::{Admission, TokenBucket};
use crate::http::{write_response, Request, RequestParser, Response};
use crate::metrics::{Endpoint, ServeMetrics, ShedReason};
use crate::obs::{RequestTrace, TraceStamp};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Most requests one connection may have in flight (parsed and dispatched,
/// response not yet serialized). Bounds per-connection server memory under a
/// client that streams requests faster than batches score.
pub(crate) const MAX_PIPELINED: usize = 32;

/// Read chunk size per `read` call on a readable socket.
const READ_CHUNK: usize = 16 << 10;

/// One keep-alive connection owned by a poller thread. See the module docs.
pub(crate) struct Connection {
    stream: TcpStream,
    /// Reused slots get a fresh generation, so completions and timer entries
    /// addressed to a dead connection are recognisably stale.
    pub(crate) generation: u64,
    parser: RequestParser,
    /// Serialized-but-unsent response bytes; `out_pos` is the partial-write
    /// resume point.
    out: Vec<u8>,
    out_pos: usize,
    /// Completed responses (with their traces) waiting for their turn in
    /// sequence order.
    pending: BTreeMap<u64, (Response, RequestTrace)>,
    /// Cumulative bytes this connection has written to the socket.
    written_total: u64,
    /// Serialized responses not yet fully on the wire: `(due, trace)` where
    /// `due` is the cumulative write offset of the response's last byte. When
    /// `written_total` reaches `due`, the response's final byte has hit the
    /// socket and its trace finalizes (the `write` stage ends there, so a
    /// slow-draining client shows up in the tail). Front-to-back in sequence
    /// order because serialization is.
    inflight_writes: VecDeque<(u64, RequestTrace)>,
    /// Next sequence number to assign to a parsed request.
    next_seq: u64,
    /// Next sequence number to serialize (all below it are on the wire or in
    /// `out`).
    next_write_seq: u64,
    /// The final sequence: its response announces `Connection: close` and the
    /// connection closes once it is flushed. Set by `Connection: close`, the
    /// request cap, or a parse error.
    last_seq: Option<u64>,
    /// Peer sent EOF: no more requests will arrive.
    read_closed: bool,
    /// A close-announcing response has been serialized: flush `out`, then
    /// close. No further parsing or dispatch.
    closing: bool,
    /// This client's token bucket — admission keyed on connection identity:
    /// minted at accept, dies with the connection. `None` when per-client
    /// rate limiting is off.
    bucket: Option<TokenBucket>,
    /// Last moment bytes moved on this socket in either direction.
    pub(crate) last_activity: Instant,
}

impl Connection {
    /// Adopt an accepted stream: switch it nonblocking and start the session.
    pub(crate) fn new(
        stream: TcpStream,
        generation: u64,
        now: Instant,
        bucket: Option<TokenBucket>,
    ) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        Ok(Self {
            stream,
            generation,
            parser: RequestParser::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: BTreeMap::new(),
            written_total: 0,
            inflight_writes: VecDeque::new(),
            next_seq: 0,
            next_write_seq: 0,
            last_seq: None,
            read_closed: false,
            closing: false,
            bucket,
            last_activity: now,
        })
    }

    /// The raw fd for the poll set.
    pub(crate) fn fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        self.stream.as_raw_fd()
    }

    /// Requests dispatched whose responses have not yet been serialized.
    fn outstanding(&self) -> usize {
        (self.next_seq - self.next_write_seq) as usize
    }

    /// Whether the poll set should watch this socket for readability.
    pub(crate) fn wants_read(&self) -> bool {
        !self.read_closed
            && !self.closing
            && self.last_seq.is_none()
            && self.outstanding() < MAX_PIPELINED
    }

    /// Whether unsent response bytes are waiting on socket writability.
    pub(crate) fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// No request in progress in either direction: a timeout or EOF here is
    /// the clean end of a keep-alive session.
    pub(crate) fn is_idle(&self) -> bool {
        self.parser.is_idle() && self.outstanding() == 0 && !self.wants_write()
    }

    /// The session is over and fully flushed: the poller should drop the
    /// connection.
    pub(crate) fn should_close(&self) -> bool {
        if self.wants_write() {
            return false;
        }
        self.closing || (self.read_closed && self.outstanding() == 0)
    }

    /// Drain the readable socket into the parser. Returns `Err` only on a
    /// broken socket (the poller drops the connection); EOF is recorded, not
    /// an error.
    pub(crate) fn on_readable(&mut self, now: Instant) -> io::Result<()> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    return Ok(());
                }
                Ok(n) => {
                    self.last_activity = now;
                    self.parser.feed(&chunk[..n]);
                    // Don't read unboundedly from one firehose connection;
                    // fairness over the poller's other connections matters
                    // more than squeezing this socket dry. A short read means
                    // the buffer is drained anyway.
                    if n < READ_CHUNK {
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Assign the next sequence number, recording keep-alive reuse for every
    /// request after a connection's first.
    fn assign_seq(&mut self, metrics: &ServeMetrics) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if seq > 0 {
            metrics.record_keepalive_reuse();
        }
        seq
    }

    /// Pull every parseable request out of the buffer, up to the pipelining
    /// cap, assigning sequence numbers and applying keep-alive policy. Each
    /// parsed request is born with a [`RequestTrace`] — the trace id is
    /// minted here, at parse completion, and every later stage stamps the
    /// same record. Returns the requests to hand to handler threads; a
    /// malformed request is answered locally (400, close) and ends parsing —
    /// framing is lost.
    ///
    /// A request that finds this client's token bucket empty is also answered
    /// locally — `429` + `Retry-After` without a handler round-trip — but the
    /// connection stays open: framing is intact, and the whole point of
    /// `Retry-After` is that the same client retries on the same connection
    /// once its bucket refills.
    pub(crate) fn take_requests(
        &mut self,
        now: Instant,
        max_requests: usize,
        metrics: &ServeMetrics,
        admission: &Admission,
    ) -> Vec<(u64, Request, RequestTrace)> {
        let mut dispatches = Vec::new();
        while !self.closing && self.last_seq.is_none() && self.outstanding() < MAX_PIPELINED {
            match self.parser.poll_request() {
                Ok(Some(request)) => {
                    let seq = self.assign_seq(metrics);
                    if request.close || seq + 1 >= max_requests.max(1) as u64 {
                        self.last_seq = Some(seq);
                    }
                    if let Some(bucket) = self.bucket.as_mut() {
                        if !bucket.try_take(now) {
                            let endpoint = Endpoint::resolve(&request.method, &request.path);
                            metrics.record_request(endpoint);
                            metrics.record_error();
                            metrics.record_shed(endpoint, ShedReason::RateLimited);
                            let mut trace = metrics.obs().begin_trace(now);
                            trace.endpoint = endpoint.name();
                            trace.stamp_at(TraceStamp::ResponseQueued, Instant::now());
                            self.complete(
                                seq,
                                Response::too_many(
                                    "client rate limit exceeded",
                                    admission.retry_after_secs(),
                                ),
                                trace,
                            );
                            continue;
                        }
                    }
                    let trace = metrics.obs().begin_trace(now);
                    if seq != self.next_write_seq {
                        // An earlier request is still in flight: this one is
                        // being parsed ahead of its turn.
                        metrics.connections().record_pipelined();
                    }
                    dispatches.push((seq, request, trace));
                }
                Ok(None) => break,
                Err(e) => {
                    // A malformed request desynchronises the framing; answer
                    // 400 and close rather than guess where the next request
                    // starts. No handler round-trip — the poller owns this.
                    let seq = self.assign_seq(metrics);
                    self.last_seq = Some(seq);
                    metrics.record_request(Endpoint::Other);
                    metrics.record_error();
                    let mut trace = metrics.obs().begin_trace(now);
                    trace.stamp_at(TraceStamp::ResponseQueued, Instant::now());
                    self.complete(
                        seq,
                        Response::error(400, &format!("malformed request: {e}")),
                        trace,
                    );
                    break;
                }
            }
        }
        dispatches
    }

    /// Accept a completed response for `seq`, with the trace that followed
    /// the request through the stack. Responses arrive in any order;
    /// serialization happens in sequence order via
    /// [`serialize_ready`](Self::serialize_ready).
    pub(crate) fn complete(&mut self, seq: u64, response: Response, trace: RequestTrace) {
        if self.closing || seq < self.next_write_seq {
            return; // response for a sequence this connection already gave up on
        }
        self.pending.insert(seq, (response, trace));
    }

    /// Move every response whose turn has come from the reorder map into the
    /// output buffer, in sequence order, stamping the response's trace id
    /// into an `X-Trace-Id` header. When the final (close-announcing)
    /// response serializes, the connection stops accepting further work.
    pub(crate) fn serialize_ready(&mut self, running: bool) {
        while let Some((response, trace)) = self.pending.remove(&self.next_write_seq) {
            let seq = self.next_write_seq;
            let keep = running && self.last_seq != Some(seq);
            // Writing into the Vec cannot fail.
            let _ = write_response(&mut self.out, &response, keep, Some(&trace.id_hex()));
            // The response's last byte will be the connection's
            // `due`-th cumulative byte; its trace finalizes when
            // `written_total` gets there.
            let due = self.written_total + (self.out.len() - self.out_pos) as u64;
            self.inflight_writes.push_back((due, trace));
            self.next_write_seq = seq + 1;
            if !keep {
                self.closing = true;
                // Abandoned pipelined responses never reach the wire; their
                // traces drop unfinalized.
                self.pending.clear();
                break;
            }
        }
    }

    /// Finalize every trace whose response is now fully on the wire: stamp
    /// the last-byte-written boundary and fold the trace into the latency
    /// and stage histograms.
    fn finalize_written(&mut self, now: Instant, metrics: &ServeMetrics) {
        while self
            .inflight_writes
            .front()
            .is_some_and(|(due, _)| *due <= self.written_total)
        {
            let Some((_, mut trace)) = self.inflight_writes.pop_front() else {
                break;
            };
            trace.stamp_at(TraceStamp::WriteDone, now);
            metrics.finalize_trace(&trace);
        }
    }

    /// Write buffered response bytes until the socket would block or the
    /// buffer drains, resuming mid-response across calls, finalizing the
    /// trace of every response whose last byte reaches the socket. Returns
    /// `Err` on a broken socket.
    pub(crate) fn on_writable(&mut self, now: Instant, metrics: &ServeMetrics) -> io::Result<()> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.out_pos += n;
                    self.written_total += n as u64;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.finalize_written(now, metrics);
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        self.finalize_written(now, metrics);
        Ok(())
    }
}

/// A hashed timer wheel over connection slots, with lazy revalidation (see
/// the module docs). Entries are `(slot, generation)` pairs; the wheel never
/// cancels — stale pairs fall out when they fire and fail validation.
pub(crate) struct TimerWheel {
    granularity: Duration,
    buckets: Vec<Vec<(usize, u64)>>,
    /// Bucket whose entries are due at `base`.
    hand: usize,
    /// Due time of the `hand` bucket.
    base: Instant,
    len: usize,
}

impl TimerWheel {
    pub(crate) fn new(granularity: Duration, n_buckets: usize, now: Instant) -> Self {
        Self {
            granularity: granularity.max(Duration::from_millis(1)),
            buckets: vec![Vec::new(); n_buckets.max(2)],
            hand: 0,
            base: now + granularity,
            len: 0,
        }
    }

    /// Schedule `(slot, generation)` to fire at or shortly after `deadline`.
    /// Deadlines beyond the wheel horizon land in the farthest bucket and are
    /// rescheduled on fire (lazy revalidation re-checks real deadlines
    /// anyway, so clamping only costs an extra wakeup).
    pub(crate) fn schedule(&mut self, deadline: Instant, slot: usize, generation: u64) {
        let offset = deadline.saturating_duration_since(self.base);
        let ticks = (offset.as_nanos() / self.granularity.as_nanos().max(1)) as usize;
        let index = (self.hand + ticks.min(self.buckets.len() - 1)) % self.buckets.len();
        self.buckets[index].push((slot, generation));
        self.len += 1;
    }

    /// Advance the wheel to `now`, returning every entry that has come due.
    pub(crate) fn expire(&mut self, now: Instant) -> Vec<(usize, u64)> {
        let mut due = Vec::new();
        let mut rounds = 0;
        while now >= self.base && rounds < self.buckets.len() {
            due.append(&mut self.buckets[self.hand]);
            self.hand = (self.hand + 1) % self.buckets.len();
            self.base += self.granularity;
            rounds += 1;
        }
        if now >= self.base {
            // Slept past a full rotation: every bucket was drained above;
            // jump the wheel forward instead of ticking through dead time.
            let behind = now.duration_since(self.base).as_nanos();
            let ticks = (behind / self.granularity.as_nanos().max(1)) as u32 + 1;
            self.base += self.granularity * ticks;
        }
        self.len -= due.len();
        due
    }

    /// How long a poller may sleep before the next bucket comes due, or
    /// `None` when nothing is scheduled.
    pub(crate) fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        Some(self.base.saturating_duration_since(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_wheel_fires_after_the_deadline_not_before() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8, start);
        wheel.schedule(start + Duration::from_millis(35), 3, 7);
        assert!(wheel.expire(start).is_empty());
        assert!(wheel.expire(start + Duration::from_millis(20)).is_empty());
        let due = wheel.expire(start + Duration::from_millis(60));
        assert_eq!(due, vec![(3, 7)]);
        assert_eq!(wheel.next_timeout(start), None);
    }

    #[test]
    fn timer_wheel_clamps_beyond_horizon_deadlines() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 4, start);
        // Horizon is 40ms; a 10-minute deadline lands in the farthest bucket
        // and fires early — the poller revalidates and reschedules.
        wheel.schedule(start + Duration::from_secs(600), 1, 1);
        let due = wheel.expire(start + Duration::from_millis(100));
        assert_eq!(due, vec![(1, 1)]);
    }

    #[test]
    fn timer_wheel_survives_long_sleeps() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 4, start);
        wheel.schedule(start + Duration::from_millis(15), 2, 2);
        // The poller slept way past several full rotations.
        let due = wheel.expire(start + Duration::from_secs(30));
        assert_eq!(due, vec![(2, 2)]);
        // The wheel recovered: a fresh schedule still fires.
        let late = start + Duration::from_secs(30);
        wheel.schedule(late + Duration::from_millis(15), 4, 4);
        assert!(wheel.expire(late + Duration::from_millis(5)).is_empty());
        assert_eq!(wheel.expire(late + Duration::from_secs(1)), vec![(4, 4)]);
    }
}
