//! # holistix-serve
//!
//! Warm-model HTTP serving for the Holistix reproduction: the layer that turns
//! the fitted Table IV baselines into an online prediction service.
//!
//! The ROADMAP's north star is a system that serves heavy traffic, and PR 1
//! built the substrate for that: sparse TF-IDF end to end plus batched
//! parallel scoring. This crate adds the request front end on top —
//! hand-rolled HTTP/1.1 over `std::net::TcpListener` (the build is offline,
//! so no tokio/hyper) with **persistent connections** and the property that
//! made the batched path worth building: **concurrent requests share scoring
//! batches**, per model, without head-of-line blocking across models.
//!
//! ## Architecture
//!
//! Since the connection-multiplexer redesign, no thread count scales with the
//! number of connected clients: P pollers + H handlers + one batch queue per
//! scorer serve any number of keep-alive connections.
//!
//! ```text
//!                  ┌────────────────────────────────── server thread ──────┐
//!  clients ───────►│ nonblocking listener ─ accepted by any poller         │
//!  (keep-alive,    │                                                       │
//!   pipelined)     │  poller threads (P, fixed) — poll(2) readiness loop   │
//!                  │  │ per connection (owned by one poller):              │
//!                  │  │   incremental RequestParser ── reorder buffer ──►  │
//!                  │  │   seq-numbered dispatch        in-order responses, │
//!                  │  │   (≤32 pipelined)              partial-write       │
//!                  │  │   idle-timeout wheel           resumption          │
//!                  │  ▼ job mpsc              ▲ completions + waker        │
//!                  │  handler threads (H, fixed): route ─ respond          │
//!                  │  │ /predict blocks here, never on a poller            │
//!                  │  ▼ per-kind job mpsc                                  │
//!                  │   ┌─ BatchQueue "LR"   ── drain ≤max_batch ──┐        │
//!                  │   │                       or until max_wait  │        │
//!                  │   ├─ BatchQueue "BERT" ── (own window sized ─┤        │
//!                  │   │      …                from cost_hint)    │        │
//!                  │   └──────────────┬───────────────────────────┘        │
//!                  │                  ▼                                    │
//!                  │     Arc<dyn Scorer>::probabilities                    │
//!                  │     (one batched call per queue batch)                │
//!                  │                  ▼                                    │
//!                  │     per-job reply channels ─► handlers ─► pollers     │
//!                  └───────────────────────────────────────────────────────┘
//! ```
//!
//! * **[`poller`]** — the `std`-only readiness layer: a safe wrapper over the
//!   `poll(2)` symbol libc already provides (the build is offline, so no
//!   mio/tokio), plus the `UnixStream`-pair waker handlers use to hand
//!   completed responses back to the owning poller.
//! * **[`conn`]** — per-connection state machines: incremental request
//!   framing that resumes from any byte boundary, response write-out with
//!   partial-write resumption, request pipelining with an in-order reorder
//!   buffer, keep-alive accounting, and the hashed idle-timeout wheel with
//!   lazy revalidation.
//!
//! * **The [`Scorer`](holistix::Scorer) seam** — everything here is written
//!   against `Arc<dyn Scorer>` (batched `probabilities` + `kind` +
//!   `cost_hint`), never a concrete model type. The classical sparse
//!   pipeline, the transformer analogues
//!   ([`TransformerScorer`](holistix::TransformerScorer)) and any future
//!   backend plug into the registry, the batch queues and `/explain` by
//!   implementing that one trait.
//! * **[`registry`]** — fits scorers at startup (one scoped thread per
//!   [`BaselineKind`](holistix::BaselineKind), each classical fit sharded via
//!   the map-reduce fit of `holistix-ml` across its slice of the machine's
//!   thread budget) and keeps them warm behind `Arc<dyn Scorer>`s;
//!   [`ModelRegistry::from_scorers`](registry::ModelRegistry::from_scorers)
//!   registers heterogeneous or externally trained scorers directly. The
//!   registry itself is immutable;
//!   [`SharedRegistry`](registry::SharedRegistry) makes it *replaceable* —
//!   `POST /reload` fits a fresh registry from an uploaded JSONL corpus **on
//!   a dedicated thread** (never an HTTP worker or a batch queue) and
//!   atomically swaps the `Arc`, so in-flight requests finish on the old
//!   models and `/predict` keeps answering throughout (an integration test
//!   pins this liveness).
//! * **[`batcher`]** — one `BatchQueue` per registered
//!   scorer: its own channel, its own drain thread, its own
//!   [`BatchConfig`] window sized from the scorer's `cost_hint`
//!   ([`BatchConfig::sized_for`]). Request workers enqueue texts on their
//!   model's queue and block on per-job reply channels; each drain loop
//!   coalesces up to [`BatchConfig::max_batch`] texts (or whatever arrived
//!   within its window) and scores them with one `probabilities` call. A
//!   saturated transformer queue therefore cannot delay a classical batch —
//!   the isolation an integration test pins with a deliberately slow scorer
//!   stub. Batching is invisible in the answers: batched scoring is
//!   bit-for-bit identical to text-at-a-time scoring, a property the core
//!   pipeline tests pin and the loopback integration test re-asserts over
//!   HTTP.
//! * **[`http`]** — the minimal HTTP/1.1 subset with keep-alive:
//!   `Content-Length` framing on both sides, `Connection: close` honored,
//!   per-connection request cap and idle timeout
//!   ([`KeepAliveConfig`]). [`RequestParser`](http::RequestParser) is the
//!   incremental server-side parser the pollers feed byte fragments into;
//!   [`http_request`] is the one-shot blocking client; [`HttpClient`] holds
//!   one connection open across any number of requests (what the
//!   `serve_throughput` bench and the CI smoke drive).
//! * **[`metrics`]** — request counters, per-kind queue sections (depth,
//!   batch-size histogram, queue-wait and scoring-time percentiles),
//!   `keepalive_reuses_total`, the connection section (open gauge,
//!   accept/close totals, readiness wakeups, pipelined requests, idle
//!   evictions), the configured thread plan next to the live OS thread
//!   count, the cross-queue batch histogram and end-to-end request latency
//!   percentiles — served by `GET /metrics` as JSON *and* Prometheus text.
//! * **[`obs`]** — the observability layer: lock-free log2-bucketed
//!   histograms, per-request traces, the slow-trace ring, and the Prometheus
//!   exposition helpers. See **Observability** below.
//! * **[`admission`]** — the overload-protection layer: per-kind queue-depth
//!   caps, a per-connection token-bucket rate limiter, the global intake
//!   valve, and graceful degradation (`/explain` sheds first). See
//!   **Admission & overload** below.
//!
//! ## Endpoints
//!
//! | Endpoint          | Body                                          | Answer |
//! |-------------------|-----------------------------------------------|--------|
//! | `POST /predict`   | `{"texts": […], "model"?: "LR"}`             | per-text 6-dimension probabilities + label; `?trace=1` adds the stage breakdown |
//! | `POST /explain`   | `{"text": "…", "top_k"?, "n_samples"?}`      | LIME token attributions via the batched perturbation path; `?trace=1` as above |
//! | `POST /reload`    | JSONL corpus (the `corpus::io` schema)        | `202` + post count; fits off-thread, swaps atomically (`409` if already reloading) |
//! | `GET /healthz`    | —                                             | status + loaded models + `reloading` flag + open connections + `uptime_s` + `build` (version, git describe) |
//! | `GET /metrics`    | —                                             | JSON by default; Prometheus text via `Accept: text/plain` or `?format=prometheus` |
//! | `GET /debug/slow` | —                                             | the N slowest completed request traces with per-stage timings |
//!
//! Every response carries an `X-Trace-Id` header.
//!
//! ## Admission & overload
//!
//! A server with bounded threads and bounded queues must decide what happens
//! when offered load exceeds capacity; doing nothing means unbounded queue
//! growth and latency collapse for everyone. [`AdmissionConfig`] (on
//! [`ServeConfig`]) configures four nested bounds, outermost first:
//!
//! 1. **Global intake valve** (`global_intake_limit`) — when the *aggregate*
//!    queued-job count across every batch queue reaches this limit, the
//!    pollers withdraw read interest from the listener and from every
//!    connection (the same mechanism per-connection pipelining already uses),
//!    so overload backpressure propagates into kernel socket buffers and TCP
//!    receive windows instead of server memory. Nothing is rejected — reads
//!    resume as soon as the backlog drains (bounded by the poll fallback
//!    timeout).
//! 2. **Per-connection token bucket** (`rate_limit`:
//!    [`RateLimitConfig`]) — each accepted connection gets its own
//!    [`TokenBucket`] holding at most `burst` tokens, refilled continuously
//!    at `rate_per_s` tokens per second; every parsed request takes one
//!    token or is answered `429` without ever reaching a handler. Keyed on
//!    connection identity: a client that reconnects starts a fresh bucket,
//!    but also pays the connection setup. Off by default (`None`).
//! 3. **Graceful degradation** (`explain_shed_depth`) — `/explain` costs
//!    hundreds of batched scoring calls per request, so it is shed *first*:
//!    once aggregate depth reaches this (lower) threshold, `/explain`
//!    answers `429` while `/predict` keeps serving until its own per-kind
//!    cap. An integration test pins the ordering.
//! 4. **Per-kind queue cap** (`max_queue_depth`) — each `BatchQueue` admits
//!    a request's texts all-or-nothing via a compare-and-swap reservation on
//!    its depth gauge; a request that would push the queue past the cap is
//!    rejected `429` with nothing enqueued, and a full transformer queue
//!    cannot make the classical queue reject (per-kind isolation).
//!
//! **429 vs 503**: `429 Too Many Requests` always means *healthy but full —
//! retry this same server after `Retry-After` seconds* (every shed response
//! carries the header, seconds granularity, from
//! `AdmissionConfig::retry_after`). `503 Service Unavailable` is reserved
//! for the reload path (model not loaded / shutting down) where retrying
//! soon won't help. Shed responses count in `requests.errors` and in the
//! per-endpoint, per-reason `admission.shed` counters (reasons:
//! `queue_full`, `rate_limited`, `degraded`); the valve exports its state
//! (`intake_closed`, `intake_closures_total`) and the configured limits.
//!
//! Defaults are permissive (caps in the thousands, no rate limit) — the
//! open-loop `serve_load` bench in `holistix-bench` ramps fixed-TPS clients
//! against a real server until a p99-latency or shed-rate SLO trips, and
//! records the last sustainable step in `BENCH_serve.json`.
//!
//! JSON parsing and serialisation are shared with the corpus crate's
//! [`holistix_corpus::json`] module (hoisted out of its JSONL reader), whose
//! `f64` formatting round-trips bit-for-bit — so probabilities survive the
//! HTTP boundary exactly.
//!
//! ## Observability
//!
//! Every request is traced from parse completion to the last byte written,
//! and every duration lands in a lock-free histogram — nothing on the hot
//! path takes a mutex or allocates per stamp.
//!
//! ```text
//!  trace lifecycle (one request; ── is a stage, │ a stamped boundary):
//!
//!  poller             handler              batch queue          poller
//!  ──────             ───────              ───────────          ──────
//!  parse done ───────► picked off queue ─► texts enqueued ─►    response
//!  │ id minted        │ HandlerStart      │ QueueEnqueue        serialized,
//!  │ (conn.rs)        │                   │ batch drained ─►    written out
//!  │                  │                   │ BatchDrain          │ WriteDone
//!  │                  │                   │ rows returned       │ finalize:
//!  │                  │                   │ Scored              │ histograms
//!  │                  │ response built    │                     │ + slow ring
//!  │                  │ ResponseQueued ───┴──────────────────►  │
//!  └── dispatch ──────┴── prepare ── queue_wait ── score ── respond ── write
//! ```
//!
//! **Stage glossary** (each stage ends at its stamp; together they partition
//! the end-to-end latency): `dispatch` = parse completion → a handler picks
//! the job up (queueing in the handler pool); `prepare` = request parsing /
//! validation / model resolution in the handler; `queue_wait` = batch-queue
//! residency until the drain loop takes the batch; `score` = the batched
//! `probabilities` call (or the LIME run for `/explain`); `respond` =
//! fan-out and response building until the completion is queued back to the
//! poller; `write` = reorder-buffer wait plus socket write-out until the
//! last byte is on the wire.
//!
//! **Histogram error bounds**: [`obs::LogHistogram`] buckets values at 16
//! sub-buckets per power of two, so any reported percentile is within one
//! bucket of the exact nearest-rank value — a relative error of at most
//! 1/16 (6.25%); values below 32 are exact. Recording is two relaxed
//! `fetch_add`s and a `fetch_max`; scrapes read the buckets without stopping
//! writers (a test records under sustained concurrent scraping and loses
//! nothing).
//!
//! **Prometheus naming** (`/metrics?format=prometheus` or
//! `Accept: text/plain`):
//!
//! | Prometheus family                        | JSON counterpart |
//! |------------------------------------------|------------------|
//! | `holistix_build_info{version,git}`       | `/healthz` `build` section |
//! | `holistix_uptime_seconds`                | `uptime_s` |
//! | `holistix_requests_total{endpoint}`      | `requests.<endpoint>` |
//! | `holistix_error_responses_total`         | `requests.errors` |
//! | `holistix_keepalive_reuses_total`        | `keepalive_reuses_total` |
//! | `holistix_texts_scored_total`            | `texts_scored` |
//! | `holistix_reloads_total`                 | `registry.reloads_total` |
//! | `holistix_connections_*`, `holistix_poll_wakeups_total`, `holistix_pipelined_requests_total`, `holistix_idle_timeout_evictions_total` | `connections` section |
//! | `holistix_os_threads`                    | `threads.os_threads` |
//! | `holistix_batch_size` (histogram)        | `batches` |
//! | `holistix_request_latency_us` (histogram)| `latency_us` |
//! | `holistix_queue_depth{kind}`, `holistix_queue_texts_scored_total{kind}`, `holistix_queue_batch_size{kind}`, `holistix_queue_wait_us{kind}`, `holistix_queue_score_us{kind}` | `queues.<kind>` |
//! | `holistix_stage_duration_us{endpoint,stage}` | `stages` section |
//! | `holistix_registry_*`                    | `registry` section |
//! | `holistix_shed_total{endpoint,reason}`   | `admission.shed` |
//! | `holistix_queue_depth_aggregate`         | `admission.aggregate_depth` |
//! | `holistix_intake_closed`, `holistix_intake_closures_total` | `admission.intake_*` |
//! | `holistix_admission_*` (limit gauges)    | `admission.limits` |
//!
//! ## Threading invariants
//!
//! The crate hand-rolls its event loop and its lock-free metrics, so the
//! invariants that keep them correct are enforced mechanically by
//! `holistix-lint` (`cargo run -p holistix-lint --release -- check`, a
//! required CI gate) rather than by convention:
//!
//! * **Event-loop files never panic** (`no-panic-in-event-loop`). `poller`
//!   and `conn` carry a `//! lint: no_panic` header: a panic there kills a
//!   poller thread and silently orphans every connection it owns while the
//!   rest of the server keeps accepting — a failure mode that presents as
//!   packet loss, worse than a crash. Invariant violations on those paths are
//!   handled as error paths (drop the connection, not the thread).
//! * **Relaxed atomics are justified** (`atomic-ordering-audit`). Monotone
//!   counters (`fetch_add` and friends) are relaxed by design; any `Relaxed`
//!   *store/swap/CAS* — an operation another thread could mistake for a
//!   synchronization edge — carries an `// ordering:` comment stating why no
//!   data is published under it (e.g. the intake gauge in [`metrics`], the
//!   slow-trace floor in [`obs`], the admission depth CAS).
//! * **Unsafe states its contract** (`safety-comment`). The crate's unsafe
//!   surface is one FFI call (`poll(2)` in [`poller`]) and it carries a
//!   `// SAFETY:` comment; any new `unsafe` must too.
//! * **No lock guard held across a blocking call** (`guard-across-send`).
//!   Holding a `Mutex`/`RwLock` guard at a `send`/`recv`/`join`/`sleep` is
//!   the classic contention-only deadlock. The one intentional case — the
//!   handler pool taking turns on the shared job receiver — is waived inline
//!   with its rationale.
//!
//! Waivers are always of the form
//! `// lint:allow(guard-across-send): receivers take turns by design` — the
//! rule name plus a mandatory reason — so `grep -rn 'lint:allow'` is the
//! complete exception ledger.
//! Best-effort Miri and ThreadSanitizer CI lanes run the serve unit tests
//! when the nightly components are available, backstopping the lexical rules
//! with dynamic checking.
//!
//! ## Quick start
//!
//! ```no_run
//! use holistix_serve::{serve, ModelRegistry, RegistryConfig, ServeConfig};
//!
//! let registry = ModelRegistry::fit_synthetic(&RegistryConfig::default());
//! let server = serve("127.0.0.1:8080", registry, ServeConfig::default()).unwrap();
//! println!("serving on http://{}", server.addr());
//! // … server.shutdown() when done.
//! ```

pub mod admission;
pub mod batcher;
pub mod conn;
pub mod http;
pub mod metrics;
pub mod obs;
pub mod poller;
pub mod registry;
pub mod server;

pub use admission::{Admission, AdmissionConfig, RateLimitConfig, TokenBucket};
pub use batcher::{BatchConfig, BatchTiming, BatcherHandle, PredictError};
pub use http::{http_request, HttpClient, Request, Response};
pub use metrics::{
    build_info, os_thread_count, AdmissionMetrics, ConnectionMetrics, Endpoint, QueueMetrics,
    ServeMetrics, ShedReason,
};
pub use obs::{validate_exposition, HistogramSnapshot, LogHistogram, RequestTrace, TraceStamp};
pub use registry::{parse_kind, FitStats, ModelRegistry, RegistryConfig, SharedRegistry};
pub use server::{
    serve, KeepAliveConfig, ServeConfig, ServerHandle, MAX_RELOAD_POSTS, MAX_TEXTS_PER_REQUEST,
};
