//! # holistix-serve
//!
//! Warm-model HTTP serving for the Holistix reproduction: the layer that turns
//! the fitted Table IV baselines into an online prediction service.
//!
//! The ROADMAP's north star is a system that serves heavy traffic, and PR 1
//! built the substrate for that: sparse TF-IDF end to end plus batched
//! parallel [`FittedBaseline`](holistix::FittedBaseline) scoring. This crate
//! adds the request front end on top — hand-rolled HTTP/1.1 over
//! `std::net::TcpListener` (the build is offline, so no tokio/hyper), with the
//! property that made the batched path worth building: **concurrent requests
//! share scoring batches**.
//!
//! ## Architecture
//!
//! ```text
//!                        ┌────────────────────────────── server thread ──┐
//!  clients ── accept ──► │ conn mpsc ─► worker pool (N scoped threads)   │
//!                        │                │ parse HTTP, route            │
//!                        │                ▼                              │
//!                        │            job mpsc ─► batcher thread         │
//!                        │                          drain ≤ max_batch    │
//!                        │                          or until max_wait    │
//!                        │                          ▼                    │
//!                        │            FittedBaseline::probabilities      │
//!                        │            (one sparse, parallel call)        │
//!                        │                          ▼                    │
//!                        │            per-job reply channels ─► workers  │
//!                        └───────────────────────────────────────────────┘
//! ```
//!
//! * **[`registry`]** — fits baselines at startup (one scoped thread per
//!   [`BaselineKind`](holistix::BaselineKind), each classical fit sharded via
//!   the map-reduce fit of `holistix-ml` across its slice of the machine's
//!   thread budget) and keeps them warm behind `Arc`s. The registry itself is
//!   immutable; [`SharedRegistry`](registry::SharedRegistry) makes it
//!   *replaceable* — `POST /reload` fits a fresh registry from an uploaded
//!   JSONL corpus **on a dedicated thread** (never an HTTP worker or the
//!   batcher) and atomically swaps the `Arc`, so in-flight requests finish on
//!   the old models and `/predict` keeps answering throughout (an integration
//!   test pins this liveness).
//! * **[`batcher`]** — request workers enqueue texts on an `mpsc` channel; a
//!   single batcher thread drains up to [`BatchConfig::max_batch`] texts (or
//!   whatever arrived within [`BatchConfig::max_wait`] of the first), scores
//!   them with one `probabilities` call, and fans results back per request.
//!   Batching is invisible in the answers: batched scoring is bit-for-bit
//!   identical to text-at-a-time scoring, a property the core pipeline tests
//!   pin and the loopback integration test re-asserts over HTTP.
//! * **[`http`]** — the minimal HTTP/1.1 subset (Content-Length framing, one
//!   request per connection) plus the blocking loopback client used by tests
//!   and the `serve_demo` load generator.
//! * **[`metrics`]** — request counters, the batch-size histogram and p50/p99
//!   latency, served by `GET /metrics`.
//!
//! ## Endpoints
//!
//! | Endpoint        | Body                                          | Answer |
//! |-----------------|-----------------------------------------------|--------|
//! | `POST /predict` | `{"texts": […], "model"?: "LR"}`             | per-text 6-dimension probabilities + label |
//! | `POST /explain` | `{"text": "…", "top_k"?, "n_samples"?}`      | LIME token attributions via the batched perturbation path |
//! | `POST /reload`  | JSONL corpus (the `corpus::io` schema)        | `202` + post count; fits off-thread, swaps atomically (`409` if already reloading) |
//! | `GET /healthz`  | —                                             | status + loaded models + `reloading` flag |
//! | `GET /metrics`  | —                                             | counters, batch histogram, latency percentiles, registry fit stats (`reloads_total`, `last_fit_us`, `fit_shards`, `corpus_size`) |
//!
//! JSON parsing and serialisation are shared with the corpus crate's
//! [`holistix_corpus::json`] module (hoisted out of its JSONL reader), whose
//! `f64` formatting round-trips bit-for-bit — so probabilities survive the
//! HTTP boundary exactly.
//!
//! ## Quick start
//!
//! ```no_run
//! use holistix_serve::{serve, ModelRegistry, RegistryConfig, ServeConfig};
//!
//! let registry = ModelRegistry::fit_synthetic(&RegistryConfig::default());
//! let server = serve("127.0.0.1:8080", registry, ServeConfig::default()).unwrap();
//! println!("serving on http://{}", server.addr());
//! // … server.shutdown() when done.
//! ```

pub mod batcher;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod server;

pub use batcher::{BatchConfig, BatcherHandle};
pub use http::{http_request, Request, Response};
pub use metrics::{Endpoint, ServeMetrics};
pub use registry::{parse_kind, FitStats, ModelRegistry, RegistryConfig, SharedRegistry};
pub use server::{serve, ServeConfig, ServerHandle, MAX_RELOAD_POSTS, MAX_TEXTS_PER_REQUEST};
