//! # holistix-serve
//!
//! Warm-model HTTP serving for the Holistix reproduction: the layer that turns
//! the fitted Table IV baselines into an online prediction service.
//!
//! The ROADMAP's north star is a system that serves heavy traffic, and PR 1
//! built the substrate for that: sparse TF-IDF end to end plus batched
//! parallel scoring. This crate adds the request front end on top —
//! hand-rolled HTTP/1.1 over `std::net::TcpListener` (the build is offline,
//! so no tokio/hyper) with **persistent connections** and the property that
//! made the batched path worth building: **concurrent requests share scoring
//! batches**, per model, without head-of-line blocking across models.
//!
//! ## Architecture
//!
//! Since the connection-multiplexer redesign, no thread count scales with the
//! number of connected clients: P pollers + H handlers + one batch queue per
//! scorer serve any number of keep-alive connections.
//!
//! ```text
//!                  ┌────────────────────────────────── server thread ──────┐
//!  clients ───────►│ nonblocking listener ─ accepted by any poller         │
//!  (keep-alive,    │                                                       │
//!   pipelined)     │  poller threads (P, fixed) — poll(2) readiness loop   │
//!                  │  │ per connection (owned by one poller):              │
//!                  │  │   incremental RequestParser ── reorder buffer ──►  │
//!                  │  │   seq-numbered dispatch        in-order responses, │
//!                  │  │   (≤32 pipelined)              partial-write       │
//!                  │  │   idle-timeout wheel           resumption          │
//!                  │  ▼ job mpsc              ▲ completions + waker        │
//!                  │  handler threads (H, fixed): route ─ respond          │
//!                  │  │ /predict blocks here, never on a poller            │
//!                  │  ▼ per-kind job mpsc                                  │
//!                  │   ┌─ BatchQueue "LR"   ── drain ≤max_batch ──┐        │
//!                  │   │                       or until max_wait  │        │
//!                  │   ├─ BatchQueue "BERT" ── (own window sized ─┤        │
//!                  │   │      …                from cost_hint)    │        │
//!                  │   └──────────────┬───────────────────────────┘        │
//!                  │                  ▼                                    │
//!                  │     Arc<dyn Scorer>::probabilities                    │
//!                  │     (one batched call per queue batch)                │
//!                  │                  ▼                                    │
//!                  │     per-job reply channels ─► handlers ─► pollers     │
//!                  └───────────────────────────────────────────────────────┘
//! ```
//!
//! * **[`poller`]** — the `std`-only readiness layer: a safe wrapper over the
//!   `poll(2)` symbol libc already provides (the build is offline, so no
//!   mio/tokio), plus the `UnixStream`-pair waker handlers use to hand
//!   completed responses back to the owning poller.
//! * **[`conn`]** — per-connection state machines: incremental request
//!   framing that resumes from any byte boundary, response write-out with
//!   partial-write resumption, request pipelining with an in-order reorder
//!   buffer, keep-alive accounting, and the hashed idle-timeout wheel with
//!   lazy revalidation.
//!
//! * **The [`Scorer`](holistix::Scorer) seam** — everything here is written
//!   against `Arc<dyn Scorer>` (batched `probabilities` + `kind` +
//!   `cost_hint`), never a concrete model type. The classical sparse
//!   pipeline, the transformer analogues
//!   ([`TransformerScorer`](holistix::TransformerScorer)) and any future
//!   backend plug into the registry, the batch queues and `/explain` by
//!   implementing that one trait.
//! * **[`registry`]** — fits scorers at startup (one scoped thread per
//!   [`BaselineKind`](holistix::BaselineKind), each classical fit sharded via
//!   the map-reduce fit of `holistix-ml` across its slice of the machine's
//!   thread budget) and keeps them warm behind `Arc<dyn Scorer>`s;
//!   [`ModelRegistry::from_scorers`](registry::ModelRegistry::from_scorers)
//!   registers heterogeneous or externally trained scorers directly. The
//!   registry itself is immutable;
//!   [`SharedRegistry`](registry::SharedRegistry) makes it *replaceable* —
//!   `POST /reload` fits a fresh registry from an uploaded JSONL corpus **on
//!   a dedicated thread** (never an HTTP worker or a batch queue) and
//!   atomically swaps the `Arc`, so in-flight requests finish on the old
//!   models and `/predict` keeps answering throughout (an integration test
//!   pins this liveness).
//! * **[`batcher`]** — one `BatchQueue` per registered
//!   scorer: its own channel, its own drain thread, its own
//!   [`BatchConfig`] window sized from the scorer's `cost_hint`
//!   ([`BatchConfig::sized_for`]). Request workers enqueue texts on their
//!   model's queue and block on per-job reply channels; each drain loop
//!   coalesces up to [`BatchConfig::max_batch`] texts (or whatever arrived
//!   within its window) and scores them with one `probabilities` call. A
//!   saturated transformer queue therefore cannot delay a classical batch —
//!   the isolation an integration test pins with a deliberately slow scorer
//!   stub. Batching is invisible in the answers: batched scoring is
//!   bit-for-bit identical to text-at-a-time scoring, a property the core
//!   pipeline tests pin and the loopback integration test re-asserts over
//!   HTTP.
//! * **[`http`]** — the minimal HTTP/1.1 subset with keep-alive:
//!   `Content-Length` framing on both sides, `Connection: close` honored,
//!   per-connection request cap and idle timeout
//!   ([`KeepAliveConfig`]). [`RequestParser`](http::RequestParser) is the
//!   incremental server-side parser the pollers feed byte fragments into;
//!   [`http_request`] is the one-shot blocking client; [`HttpClient`] holds
//!   one connection open across any number of requests (what the
//!   `serve_throughput` bench and the CI smoke drive).
//! * **[`metrics`]** — request counters, per-kind queue sections (depth,
//!   batch-size histogram, per-job p50/p99), `keepalive_reuses_total`, the
//!   connection section (open gauge, accept/close totals, readiness wakeups,
//!   pipelined requests, idle evictions), the configured thread plan next to
//!   the live OS thread count, the cross-queue batch histogram and request
//!   latency percentiles, served by `GET /metrics`.
//!
//! ## Endpoints
//!
//! | Endpoint        | Body                                          | Answer |
//! |-----------------|-----------------------------------------------|--------|
//! | `POST /predict` | `{"texts": […], "model"?: "LR"}`             | per-text 6-dimension probabilities + label |
//! | `POST /explain` | `{"text": "…", "top_k"?, "n_samples"?}`      | LIME token attributions via the batched perturbation path |
//! | `POST /reload`  | JSONL corpus (the `corpus::io` schema)        | `202` + post count; fits off-thread, swaps atomically (`409` if already reloading) |
//! | `GET /healthz`  | —                                             | status + loaded models + `reloading` flag + open connection count |
//! | `GET /metrics`  | —                                             | counters, per-kind queue sections, connection + thread sections, keep-alive reuses, batch histogram, latency percentiles, registry fit stats |
//!
//! JSON parsing and serialisation are shared with the corpus crate's
//! [`holistix_corpus::json`] module (hoisted out of its JSONL reader), whose
//! `f64` formatting round-trips bit-for-bit — so probabilities survive the
//! HTTP boundary exactly.
//!
//! ## Quick start
//!
//! ```no_run
//! use holistix_serve::{serve, ModelRegistry, RegistryConfig, ServeConfig};
//!
//! let registry = ModelRegistry::fit_synthetic(&RegistryConfig::default());
//! let server = serve("127.0.0.1:8080", registry, ServeConfig::default()).unwrap();
//! println!("serving on http://{}", server.addr());
//! // … server.shutdown() when done.
//! ```

pub mod batcher;
pub mod conn;
pub mod http;
pub mod metrics;
pub mod poller;
pub mod registry;
pub mod server;

pub use batcher::{BatchConfig, BatcherHandle};
pub use http::{http_request, HttpClient, Request, Response};
pub use metrics::{os_thread_count, ConnectionMetrics, Endpoint, QueueMetrics, ServeMetrics};
pub use registry::{parse_kind, FitStats, ModelRegistry, RegistryConfig, SharedRegistry};
pub use server::{
    serve, KeepAliveConfig, ServeConfig, ServerHandle, MAX_RELOAD_POSTS, MAX_TEXTS_PER_REQUEST,
};
