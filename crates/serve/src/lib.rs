//! # holistix-serve
//!
//! Warm-model HTTP serving for the Holistix reproduction: the layer that turns
//! the fitted Table IV baselines into an online prediction service.
//!
//! The ROADMAP's north star is a system that serves heavy traffic, and PR 1
//! built the substrate for that: sparse TF-IDF end to end plus batched
//! parallel [`FittedBaseline`](holistix::FittedBaseline) scoring. This crate
//! adds the request front end on top — hand-rolled HTTP/1.1 over
//! `std::net::TcpListener` (the build is offline, so no tokio/hyper), with the
//! property that made the batched path worth building: **concurrent requests
//! share scoring batches**.
//!
//! ## Architecture
//!
//! ```text
//!                        ┌────────────────────────────── server thread ──┐
//!  clients ── accept ──► │ conn mpsc ─► worker pool (N scoped threads)   │
//!                        │                │ parse HTTP, route            │
//!                        │                ▼                              │
//!                        │            job mpsc ─► batcher thread         │
//!                        │                          drain ≤ max_batch    │
//!                        │                          or until max_wait    │
//!                        │                          ▼                    │
//!                        │            FittedBaseline::probabilities      │
//!                        │            (one sparse, parallel call)        │
//!                        │                          ▼                    │
//!                        │            per-job reply channels ─► workers  │
//!                        └───────────────────────────────────────────────┘
//! ```
//!
//! * **[`registry`]** — fits baselines once at startup (one scoped thread per
//!   [`BaselineKind`](holistix::BaselineKind)) and keeps them warm behind
//!   `Arc`s for the process lifetime.
//! * **[`batcher`]** — request workers enqueue texts on an `mpsc` channel; a
//!   single batcher thread drains up to [`BatchConfig::max_batch`] texts (or
//!   whatever arrived within [`BatchConfig::max_wait`] of the first), scores
//!   them with one `probabilities` call, and fans results back per request.
//!   Batching is invisible in the answers: batched scoring is bit-for-bit
//!   identical to text-at-a-time scoring, a property the core pipeline tests
//!   pin and the loopback integration test re-asserts over HTTP.
//! * **[`http`]** — the minimal HTTP/1.1 subset (Content-Length framing, one
//!   request per connection) plus the blocking loopback client used by tests
//!   and the `serve_demo` load generator.
//! * **[`metrics`]** — request counters, the batch-size histogram and p50/p99
//!   latency, served by `GET /metrics`.
//!
//! ## Endpoints
//!
//! | Endpoint        | Body                                          | Answer |
//! |-----------------|-----------------------------------------------|--------|
//! | `POST /predict` | `{"texts": […], "model"?: "LR"}`             | per-text 6-dimension probabilities + label |
//! | `POST /explain` | `{"text": "…", "top_k"?, "n_samples"?}`      | LIME token attributions via the batched perturbation path |
//! | `GET /healthz`  | —                                             | status + loaded models |
//! | `GET /metrics`  | —                                             | counters, batch histogram, latency percentiles |
//!
//! JSON parsing and serialisation are shared with the corpus crate's
//! [`holistix_corpus::json`] module (hoisted out of its JSONL reader), whose
//! `f64` formatting round-trips bit-for-bit — so probabilities survive the
//! HTTP boundary exactly.
//!
//! ## Quick start
//!
//! ```no_run
//! use holistix_serve::{serve, ModelRegistry, RegistryConfig, ServeConfig};
//!
//! let registry = ModelRegistry::fit_synthetic(&RegistryConfig::default());
//! let server = serve("127.0.0.1:8080", registry, ServeConfig::default()).unwrap();
//! println!("serving on http://{}", server.addr());
//! // … server.shutdown() when done.
//! ```

pub mod batcher;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod server;

pub use batcher::{BatchConfig, BatcherHandle};
pub use http::{http_request, Request, Response};
pub use metrics::{Endpoint, ServeMetrics};
pub use registry::{parse_kind, ModelRegistry, RegistryConfig};
pub use server::{serve, ServeConfig, ServerHandle, MAX_TEXTS_PER_REQUEST};
