//! Minimal HTTP/1.1, hand-rolled over `std::io`.
//!
//! The build is offline (no tokio/hyper), and the serving layer needs only the
//! subset of HTTP/1.1 that JSON APIs use: a request line, `Content-Length`
//! framed bodies, and `Connection: close` responses. One request per
//! connection keeps the state machine trivial; the worker pool in
//! [`crate::server`] provides the concurrency.
//!
//! [`read_request`] and [`write_response`] are generic over `BufRead`/`Write`
//! so they unit-test against in-memory buffers, and [`http_request`] is the
//! matching one-shot blocking client used by the loopback integration test and
//! the `serve_demo` load generator.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Reject request bodies larger than this (1 MiB): the API carries forum-post
/// sized texts, so anything bigger is a client error, not a workload.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Reject request lines + headers larger than this (16 KiB) in total, so a
/// client streaming an endless header cannot grow server memory unboundedly.
pub const MAX_HEAD_BYTES: u64 = 16 << 10;

/// A parsed HTTP request: the line, the body, nothing else retained.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), upper-case as received.
    pub method: String,
    /// Request path, e.g. `/predict`.
    pub path: String,
    /// Decoded UTF-8 body (empty when no `Content-Length`).
    pub body: String,
}

/// An HTTP response about to be written; the body is always JSON.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
}

impl Response {
    /// A response with the given status and JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            body: body.into(),
        }
    }

    /// A `200 OK` JSON response.
    pub fn ok(body: impl Into<String>) -> Self {
        Self::json(200, body)
    }

    /// An error response with a JSON `{"error": …}` body.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!(
                "{{\"error\":{}}}",
                holistix_corpus::json::json_escape(message)
            ),
        )
    }
}

fn invalid(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Read one `\n`-terminated line, drawing at most `budget` bytes. A line that
/// exhausts the budget without a newline is an error ([`MAX_HEAD_BYTES`]
/// enforcement), not an allocation.
fn read_line_limited<R: BufRead>(reader: &mut R, budget: &mut u64) -> io::Result<String> {
    let mut line = String::new();
    let read = reader.by_ref().take(*budget).read_line(&mut line)? as u64;
    if read == *budget && !line.ends_with('\n') {
        return Err(invalid(format!(
            "request head exceeds the {MAX_HEAD_BYTES} byte limit"
        )));
    }
    *budget -= read;
    Ok(line)
}

/// Read one request: request line, headers (only `Content-Length` is
/// interpreted), then exactly `Content-Length` body bytes.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Request> {
    let mut head_budget = MAX_HEAD_BYTES;
    let line = read_line_limited(reader, &mut head_budget)?;
    if line.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before request line",
        ));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| invalid("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| invalid("request line missing path"))?
        .to_string();

    let mut content_length = 0usize;
    loop {
        let header = read_line_limited(reader, &mut head_budget)?;
        if header.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| invalid(format!("bad Content-Length {value:?}")))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(invalid(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES} byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| invalid("body is not valid UTF-8"))?;
    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write a complete `Connection: close` response.
pub fn write_response<W: Write>(writer: &mut W, response: &Response) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        reason(response.status),
        response.body.len(),
        response.body
    )?;
    writer.flush()
}

/// One-shot blocking HTTP client: connect, send, read the full response.
/// Returns `(status, body)`. Used by the integration tests, the CI smoke step
/// and the `serve_demo` load generator.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    {
        let mut writer = &stream;
        write!(
            writer,
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )?;
        writer.flush()?;
    }
    let mut reader = BufReader::new(&stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("bad status line {status_line:?}")))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            String::from_utf8(buf).map_err(|_| invalid("response body is not valid UTF-8"))?
        }
        // The server always closes after one response, so EOF frames the body.
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_post_with_body() {
        let raw = "POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n\r\n{\"texts\":[]}";
        let request = read_request(&mut Cursor::new(raw)).unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/predict");
        assert_eq!(request.body, "{\"texts\":[]}");
    }

    #[test]
    fn parses_a_get_without_body() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\n";
        let request = read_request(&mut Cursor::new(raw)).unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/healthz");
        assert!(request.body.is_empty());
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let raw = "POST /p HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi";
        assert_eq!(read_request(&mut Cursor::new(raw)).unwrap().body, "hi");
    }

    #[test]
    fn rejects_oversized_and_truncated_bodies() {
        let huge = format!("POST /p HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 2 << 20);
        assert!(read_request(&mut Cursor::new(huge)).is_err());
        let short = "POST /p HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_request(&mut Cursor::new(short)).is_err());
        assert!(read_request(&mut Cursor::new("")).is_err());
        let bad_length = "POST /p HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        assert!(read_request(&mut Cursor::new(bad_length)).is_err());
    }

    #[test]
    fn rejects_unbounded_request_heads() {
        // A header stream that never ends (no newline) must error once the
        // head budget is spent, not grow a String until OOM.
        let endless = format!("GET /healthz HTTP/1.1\r\nX-Junk: {}", "A".repeat(64 << 10));
        let err = read_request(&mut Cursor::new(endless)).unwrap_err();
        assert!(err.to_string().contains("byte limit"), "{err}");
        // Same budget applied to an endless request line.
        let endless_line = "G".repeat(64 << 10);
        assert!(read_request(&mut Cursor::new(endless_line)).is_err());
        // Many small headers also spend the budget.
        let many = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "X-H: v\r\n".repeat((MAX_HEAD_BYTES as usize / 8) + 10)
        );
        assert!(read_request(&mut Cursor::new(many)).is_err());
    }

    #[test]
    fn writes_a_well_formed_response() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::ok("{\"a\":1}")).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"a\":1}"));
    }

    #[test]
    fn error_responses_escape_the_message() {
        let response = Response::error(400, "bad \"field\"");
        assert_eq!(response.status, 400);
        assert_eq!(response.body, r#"{"error":"bad \"field\""}"#);
    }
}
