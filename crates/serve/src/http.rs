//! Minimal HTTP/1.1, hand-rolled over `std::io`, with persistent connections.
//!
//! The build is offline (no tokio/hyper), and the serving layer needs only the
//! subset of HTTP/1.1 that JSON APIs use: a request line, `Content-Length`
//! framed bodies, and connection reuse. Responses always carry a
//! `Content-Length`, which is what makes keep-alive sound: the peer knows
//! exactly where one message ends and the next begins, no chunked encoding
//! needed. A connection stays open until the client sends
//! `Connection: close`, the server's per-connection request cap or idle
//! timeout fires, or either side hangs up — HTTP/1.1 semantics, where
//! persistence is the default.
//!
//! [`read_request`] and [`write_response`] are generic over `BufRead`/`Write`
//! so they unit-test against in-memory buffers. [`RequestParser`] is the
//! incremental twin of `read_request` for the nonblocking connection
//! multiplexer: it accumulates whatever fragments the socket delivers and
//! yields complete requests with the same semantics and limits as the
//! blocking parser (a unit test feeds both the same streams byte-for-byte).
//! Two clients match the server:
//! [`http_request`], the one-shot `Connection: close` helper, and
//! [`HttpClient`], a blocking keep-alive client that pipelines any number of
//! request/response round-trips over one TCP connection (what the
//! `serve_throughput` bench and the CI smoke drive).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Reject request bodies larger than this (1 MiB): the API carries forum-post
/// sized texts, so anything bigger is a client error, not a workload.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Reject request lines + headers larger than this (16 KiB) in total, so a
/// client streaming an endless header cannot grow server memory unboundedly.
pub const MAX_HEAD_BYTES: u64 = 16 << 10;

/// A parsed HTTP request: the line, the body, and the connection directive.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), upper-case as received.
    pub method: String,
    /// Request path without the query string, e.g. `/predict`.
    pub path: String,
    /// The raw query string after `?` (empty when none), e.g. `trace=1`.
    pub query: String,
    /// The `Accept` header value as received (empty when absent) — `/metrics`
    /// content negotiation reads this.
    pub accept: String,
    /// Decoded UTF-8 body (empty when no `Content-Length`).
    pub body: String,
    /// Whether the client asked to close the connection after this response
    /// (`Connection: close`). HTTP/1.1 default is to keep it open.
    pub close: bool,
}

impl Request {
    /// Look up a query parameter by name: `/metrics?format=prometheus` →
    /// `query_param("format") == Some("prometheus")`. A bare key with no `=`
    /// yields `Some("")`. No percent-decoding — the API's parameter values
    /// (`1`, `prometheus`) never need it.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            (key == name && !key.is_empty()).then_some(value)
        })
    }
}

/// Split a request target into `(path, query)` at the first `?`.
fn split_target(target: &str) -> (String, String) {
    match target.split_once('?') {
        Some((path, query)) => (path.to_string(), query.to_string()),
        None => (target.to_string(), String::new()),
    }
}

/// An HTTP response about to be written; the body is JSON unless built with
/// [`Response::text`] (the Prometheus exposition).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// `Retry-After` header value (whole seconds), emitted on shed (`429`)
    /// responses so clients know the suggested back-off.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A response with the given status and JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            body: body.into(),
            content_type: "application/json",
            retry_after: None,
        }
    }

    /// A plain-text response — the Prometheus exposition content type
    /// (version 0.0.4 of the text format).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            body: body.into(),
            content_type: "text/plain; version=0.0.4",
            retry_after: None,
        }
    }

    /// A `200 OK` JSON response.
    pub fn ok(body: impl Into<String>) -> Self {
        Self::json(200, body)
    }

    /// An error response with a JSON `{"error": …}` body.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!(
                "{{\"error\":{}}}",
                holistix_corpus::json::json_escape(message)
            ),
        )
    }

    /// A `429 Too Many Requests` load-shed response carrying a `Retry-After`
    /// hint of `retry_after_s` seconds. The admission layer's answer for
    /// "healthy but full" — distinct from `503` (model or server unavailable).
    pub fn too_many(message: &str, retry_after_s: u64) -> Self {
        let mut response = Self::error(429, message);
        response.retry_after = Some(retry_after_s);
        response
    }
}

fn invalid(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Read one `\n`-terminated line, drawing at most `budget` bytes. A line that
/// exhausts the budget without a newline is an error ([`MAX_HEAD_BYTES`]
/// enforcement), not an allocation.
fn read_line_limited<R: BufRead>(reader: &mut R, budget: &mut u64) -> io::Result<String> {
    let mut line = String::new();
    let read = reader.by_ref().take(*budget).read_line(&mut line)? as u64;
    if read == *budget && !line.ends_with('\n') {
        return Err(invalid(format!(
            "request head exceeds the {MAX_HEAD_BYTES} byte limit"
        )));
    }
    *budget -= read;
    Ok(line)
}

/// Read one request: request line, headers (`Content-Length` and `Connection`
/// are interpreted), then exactly `Content-Length` body bytes.
///
/// Returns `Ok(None)` when the connection is cleanly closed (EOF) before a
/// request line arrives — the normal end of a keep-alive session, not an
/// error. EOF *inside* a request (mid-headers, short body) is an error.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let mut head_budget = MAX_HEAD_BYTES;
    let line = read_line_limited(reader, &mut head_budget)?;
    if line.is_empty() {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| invalid("empty request line"))?
        .to_string();
    let (path, query) = split_target(
        parts
            .next()
            .ok_or_else(|| invalid("request line missing path"))?,
    );

    let mut content_length = 0usize;
    let mut close = false;
    let mut accept = String::new();
    loop {
        let header = read_line_limited(reader, &mut head_budget)?;
        if header.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| invalid(format!("bad Content-Length {value:?}")))?;
            } else if name.eq_ignore_ascii_case("connection") {
                close = value.trim().eq_ignore_ascii_case("close");
            } else if name.eq_ignore_ascii_case("accept") {
                accept = value.trim().to_string();
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(invalid(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES} byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| invalid("body is not valid UTF-8"))?;
    Ok(Some(Request {
        method,
        path,
        query,
        accept,
        body,
        close,
    }))
}

/// A request head parsed out of the buffer, waiting for its body bytes.
#[derive(Debug)]
struct PendingHead {
    method: String,
    path: String,
    query: String,
    accept: String,
    close: bool,
    /// Bytes the head occupies in the buffer (through the blank line).
    head_len: usize,
    content_length: usize,
}

/// An incremental, resumable request parser — the nonblocking twin of
/// [`read_request`], built for the poller's edge-driven reads: bytes arrive in
/// arbitrary fragments via [`feed`](Self::feed), and
/// [`poll_request`](Self::poll_request) yields a [`Request`] exactly when one
/// is complete, `None` when more bytes are needed, or an error on the same
/// protocol violations the blocking parser rejects (head over
/// [`MAX_HEAD_BYTES`], bad or oversized `Content-Length`, non-UTF-8 body).
///
/// The parser owns a growable buffer, so a request split across any number of
/// reads — down to one byte at a time — parses identically to a single-shot
/// read, and bytes past a complete request (pipelining) stay buffered for the
/// next poll. After an error the connection is unrecoverable (framing is
/// lost); the caller answers 400 and closes.
#[derive(Debug, Default)]
pub struct RequestParser {
    buffer: Vec<u8>,
    /// Resume point for the head-terminator scan, so feeding a head one byte
    /// at a time stays linear instead of rescanning from zero each poll.
    scanned: usize,
    head: Option<PendingHead>,
}

impl RequestParser {
    /// A fresh parser with nothing buffered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append freshly read bytes to the parse buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// True when no partial request is buffered — EOF here is the clean end
    /// of a keep-alive session, while EOF mid-request is a peer abort.
    pub fn is_idle(&self) -> bool {
        self.buffer.is_empty() && self.head.is_none()
    }

    /// Bytes currently buffered (unparsed input plus any pending head).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Try to complete one request from the buffered bytes. `Ok(None)` means
    /// the buffer holds only a request prefix — feed more and poll again.
    /// Call in a loop to drain pipelined requests.
    pub fn poll_request(&mut self) -> io::Result<Option<Request>> {
        if self.head.is_none() {
            match self.find_head_end()? {
                Some(head_len) => self.head = Some(self.parse_head(head_len)?),
                None => return Ok(None),
            }
        }
        let pending = self.head.as_ref().expect("pending head");
        let total = pending.head_len + pending.content_length;
        if self.buffer.len() < total {
            return Ok(None);
        }
        let pending = self.head.take().expect("pending head");
        let body = String::from_utf8(self.buffer[pending.head_len..total].to_vec())
            .map_err(|_| invalid("body is not valid UTF-8"))?;
        self.buffer.drain(..total);
        self.scanned = 0;
        Ok(Some(Request {
            method: pending.method,
            path: pending.path,
            query: pending.query,
            accept: pending.accept,
            body,
            close: pending.close,
        }))
    }

    /// Locate the head terminator (a blank line: `\r\n\r\n` or bare `\n\n`),
    /// returning the head length including it. Enforces [`MAX_HEAD_BYTES`]
    /// even while the terminator is still outstanding, so a client streaming
    /// an endless header cannot grow the buffer unboundedly.
    fn find_head_end(&mut self) -> io::Result<Option<usize>> {
        let buffer = &self.buffer;
        for i in self.scanned..buffer.len() {
            if buffer[i] != b'\n' {
                continue;
            }
            match buffer.get(i + 1) {
                Some(b'\n') => return Ok(Some(i + 2)),
                Some(b'\r') if buffer.get(i + 2) == Some(&b'\n') => return Ok(Some(i + 3)),
                _ => {}
            }
        }
        if buffer.len() as u64 >= MAX_HEAD_BYTES {
            return Err(invalid(format!(
                "request head exceeds the {MAX_HEAD_BYTES} byte limit"
            )));
        }
        // A terminator may straddle the next read; re-examine the tail.
        self.scanned = buffer.len().saturating_sub(2);
        Ok(None)
    }

    /// Parse the head's request line and headers — the same rules (and error
    /// messages) as [`read_request`].
    fn parse_head(&self, head_len: usize) -> io::Result<PendingHead> {
        if head_len as u64 > MAX_HEAD_BYTES {
            return Err(invalid(format!(
                "request head exceeds the {MAX_HEAD_BYTES} byte limit"
            )));
        }
        let head = std::str::from_utf8(&self.buffer[..head_len])
            .map_err(|_| invalid("request head is not valid UTF-8"))?;
        let mut lines = head.split('\n');
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| invalid("empty request line"))?
            .to_string();
        let (path, query) = split_target(
            parts
                .next()
                .ok_or_else(|| invalid("request line missing path"))?,
        );
        let mut content_length = 0usize;
        let mut close = false;
        let mut accept = String::new();
        for line in lines {
            let header = line.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| invalid(format!("bad Content-Length {value:?}")))?;
                } else if name.eq_ignore_ascii_case("connection") {
                    close = value.trim().eq_ignore_ascii_case("close");
                } else if name.eq_ignore_ascii_case("accept") {
                    accept = value.trim().to_string();
                }
            }
        }
        if content_length > MAX_BODY_BYTES {
            return Err(invalid(format!(
                "body of {content_length} bytes exceeds the {MAX_BODY_BYTES} byte limit"
            )));
        }
        Ok(PendingHead {
            method,
            path,
            query,
            accept,
            close,
            head_len,
            content_length,
        })
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete response. `Content-Length` frames the body either way;
/// the `Connection` header tells the client whether the server will keep the
/// connection open for the next request. `trace_id`, when present, is emitted
/// as an `X-Trace-Id` header — the handle that correlates a client-observed
/// response with its server-side trace in `/debug/slow`.
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    keep_alive: bool,
    trace_id: Option<&str>,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        connection,
    )?;
    if let Some(secs) = response.retry_after {
        write!(writer, "Retry-After: {secs}\r\n")?;
    }
    if let Some(id) = trace_id {
        write!(writer, "X-Trace-Id: {id}\r\n")?;
    }
    write!(writer, "\r\n{}", response.body)?;
    writer.flush()
}

/// Write one request to `writer`. The client half of [`write_response`].
/// `extra_headers` are emitted verbatim as `Name: value` lines (e.g. an
/// `Accept` for `/metrics` content negotiation).
fn write_request<W: Write>(
    writer: &mut W,
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    close: bool,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "\r\n{body}")?;
    writer.flush()
}

/// A client-side parsed response: status, body, every header as received,
/// and whether the server announced it will close the connection.
struct ClientResponse {
    status: u16,
    body: String,
    headers: Vec<(String, String)>,
    server_closes: bool,
}

/// Read one response from `reader`: status line, headers, `Content-Length`
/// body. `server_closes` is true when the server announced
/// `Connection: close` (or sent no length, framing the body by EOF).
fn read_response<R: BufRead>(reader: &mut R) -> io::Result<ClientResponse> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("bad status line {status_line:?}")))?;
    let mut content_length: Option<usize> = None;
    let mut server_closes = false;
    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim();
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().ok();
            } else if name.eq_ignore_ascii_case("connection") {
                server_closes = value.eq_ignore_ascii_case("close");
            }
            headers.push((name.to_string(), value.to_string()));
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            String::from_utf8(buf).map_err(|_| invalid("response body is not valid UTF-8"))?
        }
        // No length: the server frames the body by closing, so read to EOF.
        None => {
            server_closes = true;
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(ClientResponse {
        status,
        body,
        headers,
        server_closes,
    })
}

/// One-shot blocking HTTP client: connect, send one `Connection: close`
/// request, read the full response. Returns `(status, body)`. Used by the
/// integration tests and the `serve_demo` load generator; sessions that issue
/// several requests should hold an [`HttpClient`] instead and reuse the
/// connection.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let stream = TcpStream::connect(addr)?;
    write_request(
        &mut (&stream),
        addr,
        method,
        path,
        body.unwrap_or(""),
        true,
        &[],
    )?;
    let mut reader = BufReader::new(&stream);
    let response = read_response(&mut reader)?;
    Ok((response.status, response.body))
}

/// What [`HttpClient::request_full`] returns: `(status, body, headers)`.
/// Header names keep their wire casing; match them case-insensitively.
pub type FullResponse = (u16, String, Vec<(String, String)>);

/// A blocking keep-alive HTTP client: one TCP connection, any number of
/// request/response round-trips. This is what makes connection reuse
/// measurable — the `serve_throughput` bench and the CI smoke issue all their
/// requests through one of these and read the server's
/// `keepalive_reuses_total` counter.
pub struct HttpClient {
    addr: SocketAddr,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    closed: bool,
}

impl HttpClient {
    /// Connect to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            addr,
            stream,
            reader,
            closed: false,
        })
    }

    /// Send one request over the persistent connection and read its response.
    /// Returns `(status, body)`. Errors once the server has closed the
    /// connection (its request cap, its idle timeout, or a previous
    /// `Connection: close`); reconnect with [`HttpClient::connect`] to go on.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let (status, body, _) = self.request_full(method, path, body, &[])?;
        Ok((status, body))
    }

    /// Like [`request`](Self::request), but with caller-supplied request
    /// headers and the response headers returned as [`FullResponse`]. This is
    /// how the observability tests read `X-Trace-Id` and ask `/metrics` for
    /// Prometheus via `Accept`.
    pub fn request_full(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> io::Result<FullResponse> {
        if self.closed {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "server closed this keep-alive connection",
            ));
        }
        write_request(
            &mut self.stream,
            self.addr,
            method,
            path,
            body.unwrap_or(""),
            false,
            extra_headers,
        )?;
        let response = read_response(&mut self.reader)?;
        if response.server_closes {
            self.closed = true;
        }
        Ok((response.status, response.body, response.headers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse_one(raw: &str) -> io::Result<Request> {
        read_request(&mut Cursor::new(raw)).map(|r| r.expect("expected a request, got EOF"))
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = "POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n\r\n{\"texts\":[]}";
        let request = parse_one(raw).unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/predict");
        assert_eq!(request.body, "{\"texts\":[]}");
        // HTTP/1.1 default: no Connection header means keep the connection.
        assert!(!request.close);
    }

    #[test]
    fn parses_a_get_without_body() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\n";
        let request = parse_one(raw).unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/healthz");
        assert!(request.body.is_empty());
    }

    #[test]
    fn connection_close_is_honored_case_insensitively() {
        let raw = "GET /healthz HTTP/1.1\r\nConnection: Close\r\n\r\n";
        assert!(parse_one(raw).unwrap().close);
        let keep = "GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
        assert!(!parse_one(keep).unwrap().close);
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let raw = "POST /p HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi";
        assert_eq!(parse_one(raw).unwrap().body, "hi");
    }

    #[test]
    fn eof_before_request_line_is_a_clean_close() {
        assert!(read_request(&mut Cursor::new("")).unwrap().is_none());
    }

    #[test]
    fn two_requests_parse_back_to_back_from_one_stream() {
        // Keep-alive framing: Content-Length delimits the first body exactly,
        // so the second request parses from the same reader.
        let raw = "POST /p HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /healthz HTTP/1.1\r\n\r\n";
        let mut cursor = Cursor::new(raw);
        let first = read_request(&mut cursor).unwrap().unwrap();
        assert_eq!(first.body, "hi");
        let second = read_request(&mut cursor).unwrap().unwrap();
        assert_eq!(second.path, "/healthz");
        assert!(read_request(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn rejects_oversized_and_truncated_bodies() {
        let huge = format!("POST /p HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 2 << 20);
        assert!(read_request(&mut Cursor::new(huge)).is_err());
        let short = "POST /p HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_request(&mut Cursor::new(short)).is_err());
        let bad_length = "POST /p HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        assert!(read_request(&mut Cursor::new(bad_length)).is_err());
        // EOF mid-headers is an error, unlike EOF before the request line.
        let mid_headers = "POST /p HTTP/1.1\r\nContent-Length: 2\r\n";
        assert!(read_request(&mut Cursor::new(mid_headers)).is_err());
    }

    #[test]
    fn rejects_unbounded_request_heads() {
        // A header stream that never ends (no newline) must error once the
        // head budget is spent, not grow a String until OOM.
        let endless = format!("GET /healthz HTTP/1.1\r\nX-Junk: {}", "A".repeat(64 << 10));
        let err = read_request(&mut Cursor::new(endless)).unwrap_err();
        assert!(err.to_string().contains("byte limit"), "{err}");
        // Same budget applied to an endless request line.
        let endless_line = "G".repeat(64 << 10);
        assert!(read_request(&mut Cursor::new(endless_line)).is_err());
        // Many small headers also spend the budget.
        let many = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "X-H: v\r\n".repeat((MAX_HEAD_BYTES as usize / 8) + 10)
        );
        assert!(read_request(&mut Cursor::new(many)).is_err());
    }

    /// Drain every complete request currently parseable.
    fn drain(parser: &mut RequestParser) -> Vec<Request> {
        let mut out = Vec::new();
        while let Some(request) = parser.poll_request().unwrap() {
            out.push(request);
        }
        out
    }

    #[test]
    fn incremental_parser_matches_blocking_parser() {
        let raws = [
            "POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n\r\n{\"texts\":[]}",
            "GET /healthz HTTP/1.1\r\n\r\n",
            "GET /metrics HTTP/1.1\r\nConnection: Close\r\n\r\n",
            "POST /p HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi",
        ];
        for raw in raws {
            let blocking = parse_one(raw).unwrap();
            let mut parser = RequestParser::new();
            parser.feed(raw.as_bytes());
            let incremental = parser.poll_request().unwrap().expect("complete request");
            assert_eq!(incremental.method, blocking.method);
            assert_eq!(incremental.path, blocking.path);
            assert_eq!(incremental.body, blocking.body);
            assert_eq!(incremental.close, blocking.close);
            assert!(parser.is_idle(), "leftover bytes after {raw:?}");
        }
    }

    #[test]
    fn incremental_parser_handles_one_byte_at_a_time() {
        let raw = "POST /predict HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
        let mut parser = RequestParser::new();
        let mut requests = Vec::new();
        for (i, byte) in raw.as_bytes().iter().enumerate() {
            parser.feed(&[*byte]);
            let drained = drain(&mut parser);
            if i + 1 < raw.len() {
                assert!(drained.is_empty(), "request completed early at byte {i}");
                assert!(!parser.is_idle());
            }
            requests.extend(drained);
        }
        assert_eq!(requests.len(), 1);
        assert_eq!(requests[0].body, "hello world");
        assert!(parser.is_idle());
    }

    #[test]
    fn incremental_parser_drains_pipelined_requests_in_order() {
        let raw = "POST /p HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let mut parser = RequestParser::new();
        parser.feed(raw.as_bytes());
        let requests = drain(&mut parser);
        let paths: Vec<&str> = requests.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, ["/p", "/healthz", "/metrics"]);
        assert!(parser.is_idle());
    }

    #[test]
    fn incremental_parser_rejects_what_the_blocking_parser_rejects() {
        // Oversized Content-Length fails as soon as the head completes.
        let mut parser = RequestParser::new();
        parser.feed(format!("POST /p HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 2 << 20).as_bytes());
        assert!(parser.poll_request().is_err());

        let mut parser = RequestParser::new();
        parser.feed(b"POST /p HTTP/1.1\r\nContent-Length: nope\r\n\r\n");
        assert!(parser.poll_request().is_err());

        // An endless head errors once the budget is spent — even though no
        // terminator ever arrives.
        let mut parser = RequestParser::new();
        parser.feed(b"GET /healthz HTTP/1.1\r\nX-Junk: ");
        for _ in 0..(64 << 10) / 16 {
            parser.feed(&[b'A'; 16]);
            if parser.poll_request().is_err() {
                return;
            }
        }
        panic!("endless head never errored");
    }

    #[test]
    fn incremental_parser_terminator_straddles_reads() {
        // Split the \r\n\r\n terminator across feeds at every offset.
        let raw = "POST /p HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        for split in 1..raw.len() {
            let mut parser = RequestParser::new();
            parser.feed(&raw.as_bytes()[..split]);
            let _ = parser.poll_request().unwrap();
            parser.feed(&raw.as_bytes()[split..]);
            let request = parser.poll_request().unwrap().expect("complete");
            assert_eq!(request.body, "ok", "split at {split}");
        }
    }

    #[test]
    fn writes_a_well_formed_keep_alive_response() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::ok("{\"a\":1}"), true, None).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("X-Trace-Id"));
        assert!(text.ends_with("\r\n\r\n{\"a\":1}"));
    }

    #[test]
    fn writes_a_close_response_when_asked() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::ok("{}"), false, None).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn too_many_carries_a_retry_after_header() {
        let mut out = Vec::new();
        let response = Response::too_many("queue is full", 3);
        assert_eq!(response.status, 429);
        write_response(&mut out, &response, true, None).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 3\r\n"));
        assert!(text.contains("\"error\":\"queue is full\""));
        // Ordinary responses never emit the header.
        let mut plain = Vec::new();
        write_response(&mut plain, &Response::error(503, "down"), true, None).unwrap();
        let plain = String::from_utf8(plain).unwrap();
        assert!(plain.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(!plain.contains("Retry-After"));
    }

    #[test]
    fn writes_trace_id_and_content_type() {
        let mut out = Vec::new();
        let response = Response::text(200, "holistix_up 1\n");
        write_response(&mut out, &response, true, Some("00000000deadbeef")).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(text.contains("X-Trace-Id: 00000000deadbeef\r\n"));
        assert!(text.ends_with("\r\n\r\nholistix_up 1\n"));
    }

    #[test]
    fn read_response_parses_status_body_headers_and_close() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nX-Trace-Id: abc\r\nConnection: keep-alive\r\n\r\n{}";
        let response = read_response(&mut Cursor::new(raw)).unwrap();
        assert_eq!(
            (
                response.status,
                response.body.as_str(),
                response.server_closes
            ),
            (200, "{}", false)
        );
        let trace = response
            .headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("x-trace-id"));
        assert_eq!(trace.map(|(_, v)| v.as_str()), Some("abc"));
        let raw = "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
        let response = read_response(&mut Cursor::new(raw)).unwrap();
        assert_eq!(
            (
                response.status,
                response.body.as_str(),
                response.server_closes
            ),
            (400, "", true)
        );
        // No Content-Length: EOF frames the body and implies close.
        let raw = "HTTP/1.1 200 OK\r\n\r\nrest";
        let response = read_response(&mut Cursor::new(raw)).unwrap();
        assert_eq!(
            (response.body.as_str(), response.server_closes),
            ("rest", true)
        );
    }

    #[test]
    fn query_strings_split_off_the_path() {
        let raw = "GET /metrics?format=prometheus&trace=1 HTTP/1.1\r\n\r\n";
        let request = parse_one(raw).unwrap();
        assert_eq!(request.path, "/metrics");
        assert_eq!(request.query, "format=prometheus&trace=1");
        assert_eq!(request.query_param("format"), Some("prometheus"));
        assert_eq!(request.query_param("trace"), Some("1"));
        assert_eq!(request.query_param("absent"), None);
        // The incremental parser agrees.
        let mut parser = RequestParser::new();
        parser.feed(raw.as_bytes());
        let incremental = parser.poll_request().unwrap().unwrap();
        assert_eq!(incremental.path, request.path);
        assert_eq!(incremental.query, request.query);
        // No query string: path is untouched and lookups miss.
        let bare = parse_one("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(bare.query, "");
        assert_eq!(bare.query_param("trace"), None);
    }

    #[test]
    fn accept_header_is_captured() {
        let raw = "GET /metrics HTTP/1.1\r\nAccept: text/plain\r\n\r\n";
        assert_eq!(parse_one(raw).unwrap().accept, "text/plain");
        let mut parser = RequestParser::new();
        parser.feed(raw.as_bytes());
        assert_eq!(parser.poll_request().unwrap().unwrap().accept, "text/plain");
    }

    #[test]
    fn error_responses_escape_the_message() {
        let response = Response::error(400, "bad \"field\"");
        assert_eq!(response.status, 400);
        assert_eq!(response.body, r#"{"error":"bad \"field\""}"#);
    }
}
