//! Bake the repository's `git describe` into the crate so `/healthz` and the
//! `holistix_build_info` Prometheus gauge can report exactly which source
//! built the running server. When git (or the repository) is unavailable —
//! e.g. building from a source tarball — no env var is emitted and
//! `option_env!` in `metrics::build_info` falls back to `"unknown"`.

use std::process::Command;

fn main() {
    // Re-run when HEAD moves so the describe string stays current.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    let output = Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output();
    if let Ok(output) = output {
        if output.status.success() {
            let describe = String::from_utf8_lossy(&output.stdout);
            let describe = describe.trim();
            if !describe.is_empty() {
                println!("cargo:rustc-env=HOLISTIX_GIT_DESCRIBE={describe}");
            }
        }
    }
}
