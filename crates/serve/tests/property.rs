//! Property-based tests for the log2-bucketed histogram: percentile
//! estimates must stay within one bucket width of the exact nearest-rank
//! answer for arbitrary value sets, and snapshot algebra (merge/minus)
//! must be exact regardless of how values are split across shards — and for
//! the admission token bucket: over any schedule it never admits more than
//! `burst + rate·elapsed` requests, its token count never leaves
//! `[0, burst]`, and refill is monotone in time.

use holistix_serve::{HistogramSnapshot, LogHistogram, TokenBucket};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// Exact nearest-rank percentile over the raw values.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// The inclusive bucket the histogram files `value` under.
fn bucket_of(value: u64) -> (u64, u64) {
    holistix_serve::obs::bucket_bounds(value)
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let histogram = LogHistogram::new();
    for &v in values {
        histogram.record(v);
    }
    histogram.snapshot()
}

proptest! {
    /// The histogram percentile never undershoots the exact nearest-rank
    /// value's bucket lower bound and never overshoots its upper bound:
    /// the estimate lands inside the bucket holding the true answer (or,
    /// equivalently, within one bucket width of it).
    #[test]
    fn percentile_within_one_bucket_of_exact(
        mut values in proptest::collection::vec(0u64..2_000_000_000, 1..200),
        q in 0.01f64..1.0,
    ) {
        let snapshot = snapshot_of(&values);
        values.sort_unstable();
        let exact = exact_percentile(&values, q);
        let (lower, upper) = bucket_of(exact);
        let estimate = snapshot.percentile(q).expect("non-empty");
        prop_assert!(
            estimate >= lower && estimate <= upper,
            "q={q}: estimate {estimate} outside bucket [{lower}, {upper}] of exact {exact}"
        );
    }

    /// Small values (below two octaves) are recorded exactly, so the
    /// percentile must equal the exact nearest-rank answer — zero error.
    #[test]
    fn percentile_is_exact_below_the_first_log_octave(
        mut values in proptest::collection::vec(0u64..32, 1..100),
        q in 0.01f64..1.0,
    ) {
        let snapshot = snapshot_of(&values);
        values.sort_unstable();
        prop_assert_eq!(snapshot.percentile(q), Some(exact_percentile(&values, q)));
    }

    /// Count, sum, and max survive the bucketing untouched.
    #[test]
    fn count_sum_max_are_exact(values in proptest::collection::vec(0u64..2_000_000_000, 0..100)) {
        let snapshot = snapshot_of(&values);
        prop_assert_eq!(snapshot.count(), values.len() as u64);
        prop_assert_eq!(snapshot.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(snapshot.max(), values.iter().copied().max().unwrap_or(0));
    }

    /// Recording values across two shards and merging the snapshots gives
    /// the same histogram as recording everything into one — and `minus`
    /// recovers the second shard from the merged total.
    #[test]
    fn merge_equals_single_shard_and_minus_inverts(
        left in proptest::collection::vec(0u64..2_000_000_000, 0..60),
        right in proptest::collection::vec(0u64..2_000_000_000, 0..60),
    ) {
        let mut merged = snapshot_of(&left);
        merged.merge(&snapshot_of(&right));

        let combined: Vec<u64> = left.iter().chain(right.iter()).copied().collect();
        let whole = snapshot_of(&combined);
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.sum(), whole.sum());
        prop_assert_eq!(merged.max(), whole.max());
        if !combined.is_empty() {
            prop_assert_eq!(merged.percentile(0.5), whole.percentile(0.5));
            prop_assert_eq!(merged.percentile(0.99), whole.percentile(0.99));
        }

        let delta = whole.minus(&snapshot_of(&left));
        prop_assert_eq!(delta.count(), right.len() as u64);
        prop_assert_eq!(delta.sum(), right.iter().sum::<u64>());
    }
}

proptest! {
    /// The rate-limit contract: over any arrival schedule, at most
    /// `burst + rate·elapsed` requests are ever admitted — the bucket starts
    /// full (`burst`) and can earn at most `rate` tokens per second, so no
    /// interleaving of bursts and pauses beats that line. Checked at every
    /// point of the schedule, not just the end.
    #[test]
    fn bucket_never_admits_more_than_burst_plus_rate_times_elapsed(
        rate in 0.0f64..50.0,
        burst in 0.0f64..20.0,
        schedule in collection::vec((0u64..400, 0usize..4), 1..50),
    ) {
        let base = Instant::now();
        let mut bucket = TokenBucket::new(rate, burst, base);
        let mut now = base;
        let mut admitted = 0u64;
        for &(dt_ms, attempts) in &schedule {
            now += Duration::from_millis(dt_ms);
            for _ in 0..attempts {
                if bucket.try_take(now) {
                    admitted += 1;
                }
            }
            let elapsed = now.duration_since(base).as_secs_f64();
            let ceiling = burst + rate * elapsed;
            prop_assert!(
                admitted as f64 <= ceiling + 1e-6,
                "admitted {admitted} > burst {burst} + rate {rate} * elapsed {elapsed}"
            );
        }
    }

    /// Refill never overshoots the cap and takes never drive the count
    /// negative, even when the schedule hands the bucket a non-monotone
    /// clock (stale `now` values jump backwards between calls).
    #[test]
    fn bucket_tokens_stay_within_zero_and_burst(
        rate in 0.0f64..50.0,
        burst in 0.0f64..20.0,
        schedule in collection::vec((0u64..2_000, 0usize..4), 1..50),
    ) {
        let base = Instant::now();
        let mut bucket = TokenBucket::new(rate, burst, base);
        prop_assert!(bucket.tokens() >= 0.0 && bucket.tokens() <= burst);
        for &(offset_ms, attempts) in &schedule {
            // Absolute (not cumulative) offsets: successive entries jump
            // forwards and backwards arbitrarily.
            let now = base + Duration::from_millis(offset_ms);
            for _ in 0..attempts {
                bucket.try_take(now);
                prop_assert!(
                    bucket.tokens() >= 0.0 && bucket.tokens() <= burst,
                    "tokens {} outside [0, {burst}]",
                    bucket.tokens()
                );
            }
        }
    }

    /// Refill is monotone in elapsed time: starting from the same drained
    /// bucket, a request at a later instant is admitted whenever the same
    /// request at an earlier instant would have been.
    #[test]
    fn bucket_refill_is_monotone_in_time(
        rate in 0.1f64..50.0,
        burst in 1.0f64..10.0,
        t1_ms in 0u64..5_000,
        extra_ms in 0u64..5_000,
        drains in 0usize..15,
    ) {
        let base = Instant::now();
        let mut bucket = TokenBucket::new(rate, burst, base);
        for _ in 0..drains {
            bucket.try_take(base);
        }
        let mut earlier = bucket.clone();
        let mut later = bucket;
        let earlier_admits = earlier.try_take(base + Duration::from_millis(t1_ms));
        let later_admits = later.try_take(base + Duration::from_millis(t1_ms + extra_ms));
        prop_assert!(
            !earlier_admits || later_admits,
            "admitted at {t1_ms}ms but refused {extra_ms}ms later"
        );
    }
}
