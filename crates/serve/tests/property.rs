//! Property-based tests for the log2-bucketed histogram: percentile
//! estimates must stay within one bucket width of the exact nearest-rank
//! answer for arbitrary value sets, and snapshot algebra (merge/minus)
//! must be exact regardless of how values are split across shards.

use holistix_serve::{HistogramSnapshot, LogHistogram};
use proptest::prelude::*;

/// Exact nearest-rank percentile over the raw values.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// The inclusive bucket the histogram files `value` under.
fn bucket_of(value: u64) -> (u64, u64) {
    holistix_serve::obs::bucket_bounds(value)
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let histogram = LogHistogram::new();
    for &v in values {
        histogram.record(v);
    }
    histogram.snapshot()
}

proptest! {
    /// The histogram percentile never undershoots the exact nearest-rank
    /// value's bucket lower bound and never overshoots its upper bound:
    /// the estimate lands inside the bucket holding the true answer (or,
    /// equivalently, within one bucket width of it).
    #[test]
    fn percentile_within_one_bucket_of_exact(
        mut values in proptest::collection::vec(0u64..2_000_000_000, 1..200),
        q in 0.01f64..1.0,
    ) {
        let snapshot = snapshot_of(&values);
        values.sort_unstable();
        let exact = exact_percentile(&values, q);
        let (lower, upper) = bucket_of(exact);
        let estimate = snapshot.percentile(q).expect("non-empty");
        prop_assert!(
            estimate >= lower && estimate <= upper,
            "q={q}: estimate {estimate} outside bucket [{lower}, {upper}] of exact {exact}"
        );
    }

    /// Small values (below two octaves) are recorded exactly, so the
    /// percentile must equal the exact nearest-rank answer — zero error.
    #[test]
    fn percentile_is_exact_below_the_first_log_octave(
        mut values in proptest::collection::vec(0u64..32, 1..100),
        q in 0.01f64..1.0,
    ) {
        let snapshot = snapshot_of(&values);
        values.sort_unstable();
        prop_assert_eq!(snapshot.percentile(q), Some(exact_percentile(&values, q)));
    }

    /// Count, sum, and max survive the bucketing untouched.
    #[test]
    fn count_sum_max_are_exact(values in proptest::collection::vec(0u64..2_000_000_000, 0..100)) {
        let snapshot = snapshot_of(&values);
        prop_assert_eq!(snapshot.count(), values.len() as u64);
        prop_assert_eq!(snapshot.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(snapshot.max(), values.iter().copied().max().unwrap_or(0));
    }

    /// Recording values across two shards and merging the snapshots gives
    /// the same histogram as recording everything into one — and `minus`
    /// recovers the second shard from the merged total.
    #[test]
    fn merge_equals_single_shard_and_minus_inverts(
        left in proptest::collection::vec(0u64..2_000_000_000, 0..60),
        right in proptest::collection::vec(0u64..2_000_000_000, 0..60),
    ) {
        let mut merged = snapshot_of(&left);
        merged.merge(&snapshot_of(&right));

        let combined: Vec<u64> = left.iter().chain(right.iter()).copied().collect();
        let whole = snapshot_of(&combined);
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.sum(), whole.sum());
        prop_assert_eq!(merged.max(), whole.max());
        if !combined.is_empty() {
            prop_assert_eq!(merged.percentile(0.5), whole.percentile(0.5));
            prop_assert_eq!(merged.percentile(0.99), whole.percentile(0.99));
        }

        let delta = whole.minus(&snapshot_of(&left));
        prop_assert_eq!(delta.count(), right.len() as u64);
        prop_assert_eq!(delta.sum(), right.iter().sum::<u64>());
    }
}
