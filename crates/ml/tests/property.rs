//! Property-based tests for the classical-ML stack: metric bounds and identities,
//! vectoriser invariants, and classifier probability sanity.

use holistix_linalg::Matrix;
use holistix_ml::{
    ClassificationReport, Classifier, ConfusionMatrix, GaussianNaiveBayes, LogisticRegression,
    LogisticRegressionConfig, TfidfVectorizer, VectorizerOptions,
};
use proptest::prelude::*;

fn labels_and_predictions() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    proptest::collection::vec((0usize..6, 0usize..6), 1..200)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All classification metrics are bounded in [0, 1], and accuracy equals the
    /// diagonal mass of the confusion matrix.
    #[test]
    fn metrics_are_bounded((gold, predicted) in labels_and_predictions()) {
        let report = ClassificationReport::from_labels(&gold, &predicted, 6);
        prop_assert!((0.0..=1.0).contains(&report.accuracy));
        prop_assert!((0.0..=1.0).contains(&report.macro_f1));
        prop_assert!((0.0..=1.0).contains(&report.weighted_f1));
        for class in &report.per_class {
            prop_assert!((0.0..=1.0).contains(&class.precision));
            prop_assert!((0.0..=1.0).contains(&class.recall));
            prop_assert!((0.0..=1.0).contains(&class.f1));
            // F1 lies between min and max of precision and recall.
            let lo = class.precision.min(class.recall);
            let hi = class.precision.max(class.recall);
            prop_assert!(class.f1 >= lo - 1e-12 && class.f1 <= hi + 1e-12);
        }
        let cm = ConfusionMatrix::from_labels(&gold, &predicted, 6);
        let diag: usize = (0..6).map(|c| cm.count(c, c)).sum();
        prop_assert!((report.accuracy - diag as f64 / gold.len() as f64).abs() < 1e-12);
        // Supports sum to the number of items.
        let support: usize = report.per_class.iter().map(|c| c.support).sum();
        prop_assert_eq!(support, gold.len());
    }

    /// Predicting gold labels exactly yields perfect metrics.
    #[test]
    fn perfect_prediction_is_perfect(gold in proptest::collection::vec(0usize..6, 1..100)) {
        let report = ClassificationReport::from_labels(&gold, &gold, 6);
        prop_assert!((report.accuracy - 1.0).abs() < 1e-12);
        for class in &report.per_class {
            if class.support > 0 {
                prop_assert!((class.f1 - 1.0).abs() < 1e-12);
            }
        }
    }

    /// TF-IDF features are non-negative, have the fitted width, and L2-normalised rows
    /// have norm 0 or 1.
    #[test]
    fn tfidf_matrix_invariants(docs in proptest::collection::vec("[a-f ]{0,40}", 1..20)) {
        let vectorizer = TfidfVectorizer::fit(&docs, VectorizerOptions::paper_default());
        let matrix = vectorizer.transform(&docs);
        prop_assert_eq!(matrix.rows(), docs.len());
        prop_assert_eq!(matrix.cols(), vectorizer.n_features());
        prop_assert!(matrix.data().iter().all(|&v| v >= 0.0 && v.is_finite()));
        for r in 0..matrix.rows() {
            let norm: f64 = matrix.row(r).iter().map(|v| v * v).sum::<f64>().sqrt();
            prop_assert!(norm < 1e-9 || (norm - 1.0).abs() < 1e-9);
        }
    }

    /// Classifier probability rows always sum to one and the argmax matches predict.
    #[test]
    fn classifier_probabilities_are_consistent(seed in 0u64..200) {
        // A small random-but-separable 3-class problem.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30usize {
            let class = i % 3;
            let offset = seed as f64 % 7.0;
            let mut row = vec![0.1, 0.1, 0.1];
            row[class] = 2.0 + offset * 0.1 + (i as f64) * 0.01;
            rows.push(row);
            labels.push(class);
        }
        let x = Matrix::from_rows(&rows);
        let mut lr = LogisticRegression::new(LogisticRegressionConfig { epochs: 50, seed, ..Default::default() });
        lr.fit(&x, &labels);
        let mut nb = GaussianNaiveBayes::default_config();
        nb.fit(&x, &labels);
        for model in [&lr as &dyn Classifier, &nb as &dyn Classifier] {
            let proba = model.predict_proba(&x);
            let preds = model.predict(&x);
            for (r, &pred) in preds.iter().enumerate() {
                prop_assert!((proba.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-6);
                prop_assert_eq!(holistix_linalg::argmax(proba.row(r)).unwrap(), pred);
            }
        }
    }

    /// Averaging k copies of the same report reproduces that report.
    #[test]
    fn report_average_is_idempotent((gold, predicted) in labels_and_predictions(), k in 1usize..6) {
        let report = ClassificationReport::from_labels(&gold, &predicted, 6);
        let averaged = ClassificationReport::average(&vec![report.clone(); k]);
        prop_assert!((averaged.accuracy - report.accuracy).abs() < 1e-12);
        prop_assert!((averaged.macro_f1 - report.macro_f1).abs() < 1e-12);
    }
}

mod parallel_fit_equivalence {
    use holistix_ml::{CountVectorizer, TfidfVectorizer, VectorizerOptions};
    use proptest::prelude::*;

    /// Random corpora over a small alphabet so vocabularies overlap across docs.
    fn corpus() -> impl Strategy<Value = Vec<String>> {
        proptest::collection::vec("[a-f ]{0,60}", 1..24)
    }

    fn option_grid(variant: usize) -> VectorizerOptions {
        match variant % 4 {
            0 => VectorizerOptions::paper_default(),
            1 => VectorizerOptions {
                sublinear_tf: true,
                ..VectorizerOptions::paper_default()
            },
            2 => VectorizerOptions {
                l2_normalize: false,
                min_document_frequency: 2,
                ..VectorizerOptions::paper_default()
            },
            _ => VectorizerOptions {
                ngram_max: 2,
                remove_stopwords: false,
                max_features: Some(40),
                ..VectorizerOptions::paper_default()
            },
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The acceptance bar for the sharded map-reduce fit: for random
        /// corpora and random shard splits (any thread count from 1 to 16,
        /// which varies shard count, split boundaries and the shape of the
        /// pairwise merge tree), the parallel fit's vocabulary, IDF vector and
        /// sparse transform are **bit-identical** to the sequential fit's.
        #[test]
        fn fit_parallel_matches_sequential_bitwise(
            docs in corpus(),
            n_threads in 1usize..17,
            variant in 0usize..4,
        ) {
            let options = option_grid(variant);
            let sequential = TfidfVectorizer::fit(&docs, options.clone());
            let parallel = TfidfVectorizer::fit_parallel(&docs, options, n_threads);
            prop_assert_eq!(parallel.vocabulary().terms(), sequential.vocabulary().terms());
            for term in sequential.vocabulary().terms() {
                prop_assert_eq!(
                    parallel.vocabulary().document_frequency(term),
                    sequential.vocabulary().document_frequency(term)
                );
                prop_assert_eq!(
                    parallel.vocabulary().term_frequency(term),
                    sequential.vocabulary().term_frequency(term)
                );
            }
            // Bit-level equality: f64 == on IDF weights and on every stored
            // CSR entry (PartialEq on CsrMatrix compares the raw arrays).
            prop_assert_eq!(parallel.idf(), sequential.idf());
            prop_assert_eq!(
                parallel.transform_sparse(&docs),
                sequential.transform_sparse(&docs)
            );
        }

        /// The one-tokenisation-pass sharded fit+transform equals sequential
        /// fit-then-transform bitwise, for both vectorisers.
        #[test]
        fn fit_transform_parallel_matches_two_pass_bitwise(
            docs in corpus(),
            n_threads in 1usize..17,
            variant in 0usize..4,
        ) {
            let options = option_grid(variant);
            let sequential = TfidfVectorizer::fit(&docs, options.clone());
            let (parallel, matrix) =
                TfidfVectorizer::fit_transform_sparse_parallel(&docs, options.clone(), n_threads);
            prop_assert_eq!(parallel.idf(), sequential.idf());
            prop_assert_eq!(matrix, sequential.transform_sparse(&docs));

            let counts_sequential = CountVectorizer::fit(&docs, options.clone());
            let (counts, count_matrix) =
                CountVectorizer::fit_transform_sparse_parallel(&docs, options, n_threads);
            prop_assert_eq!(
                counts.vocabulary().terms(),
                counts_sequential.vocabulary().terms()
            );
            prop_assert_eq!(count_matrix, counts_sequential.transform_sparse(&docs));
        }
    }
}

mod interned_fit_equivalence {
    use holistix_ml::{CountVectorizer, VectorizerOptions};
    use holistix_text::{ngrams, stem, tokenize, StopwordFilter, TokenKind, VocabularyBuilder};
    use proptest::prelude::*;

    /// Corpora over an alphabet with uppercase, accented and Greek characters,
    /// so both the ASCII borrow fast path and the `to_lowercase` slow path of
    /// the interned analyzer (including final-sigma context sensitivity) are
    /// exercised.
    fn corpus() -> impl Strategy<Value = Vec<String>> {
        proptest::collection::vec("[a-fA-F ÉéΣσßi]{0,60}", 1..24)
    }

    fn option_grid(variant: usize) -> VectorizerOptions {
        match variant % 5 {
            0 => VectorizerOptions::paper_default(),
            1 => VectorizerOptions {
                stem: true,
                ..VectorizerOptions::paper_default()
            },
            2 => VectorizerOptions {
                ngram_max: 3,
                stem: true,
                remove_stopwords: false,
                ..VectorizerOptions::paper_default()
            },
            3 => VectorizerOptions {
                lowercase: false,
                min_document_frequency: 2,
                ..VectorizerOptions::paper_default()
            },
            _ => VectorizerOptions {
                ngram_max: 2,
                max_features: Some(30),
                ..VectorizerOptions::paper_default()
            },
        }
    }

    /// The string-based analyzer reconstructed from the public text API — the
    /// pre-interning fit path, kept as the independent reference.
    fn reference_analyze(text: &str, options: &VectorizerOptions) -> Vec<String> {
        let stopwords = StopwordFilter::english_shared();
        let mut words: Vec<String> = tokenize(text)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Word)
            .map(|t| if options.lowercase { t.lower() } else { t.text })
            .filter(|w| !options.remove_stopwords || !stopwords.is_stopword(w))
            .collect();
        if options.stem {
            words = words.iter().map(|w| stem(w)).collect();
        }
        if options.ngram_max <= 1 {
            return words;
        }
        let mut terms = words.clone();
        for n in 2..=options.ngram_max {
            terms.extend(ngrams(&words, n).into_iter().map(|g| g.joined()));
        }
        terms
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The interning satellite's acceptance bar: the interned fit's
        /// vocabulary is **bit-identical** to one built by `add_document`-ing
        /// the reference analyzer's string terms — same terms in the same
        /// order, same integer frequencies, same IDF bits — and the retained
        /// token streams count into the same matrix the string transform
        /// produces.
        #[test]
        fn interned_fit_matches_string_reference(
            docs in corpus(),
            n_threads in 1usize..9,
            variant in 0usize..5,
        ) {
            let options = option_grid(variant);
            let mut builder = VocabularyBuilder::new();
            for doc in &docs {
                builder.add_document(&reference_analyze(doc, &options));
            }
            let reference = builder.build_with_min_df(
                options.min_document_frequency.max(1),
                options.max_features,
            );

            let (fitted, matrix) =
                CountVectorizer::fit_transform_sparse_parallel(&docs, options, n_threads);
            prop_assert_eq!(fitted.vocabulary().terms(), reference.terms());
            for term in reference.terms() {
                prop_assert_eq!(
                    fitted.vocabulary().term_frequency(term),
                    reference.term_frequency(term)
                );
                prop_assert_eq!(
                    fitted.vocabulary().document_frequency(term),
                    reference.document_frequency(term)
                );
                prop_assert_eq!(
                    fitted.vocabulary().idf(term).to_bits(),
                    reference.idf(term).to_bits()
                );
            }
            // The interned token streams re-emit the same CSR matrix the
            // string-based transform builds from scratch.
            prop_assert_eq!(matrix, fitted.transform_sparse(&docs));
        }
    }
}

mod tree_reduce_equivalence {
    use holistix_ml::tree_reduce;
    use holistix_text::VocabularyBuilder;
    use proptest::prelude::*;

    fn corpus() -> impl Strategy<Value = Vec<String>> {
        proptest::collection::vec("[a-f ]{0,60}", 1..40)
    }

    /// Split `docs` into `n_shards` contiguous chunks and count each into its
    /// own builder — the map half of the sharded fit, minus the threads.
    fn shard_builders(docs: &[String], n_shards: usize) -> Vec<VocabularyBuilder> {
        let chunk = docs.len().div_ceil(n_shards.clamp(1, docs.len()));
        docs.chunks(chunk)
            .map(|chunk| {
                let mut builder = VocabularyBuilder::new();
                for doc in chunk {
                    let tokens: Vec<&str> = doc.split_whitespace().collect();
                    builder.add_document(&tokens);
                }
                builder
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The tree-reduce satellite's acceptance bar: pairwise merge rounds
        /// over per-shard [`VocabularyBuilder`]s freeze into a vocabulary
        /// bit-identical to the single-threaded sequential reduce, at every
        /// shard count up to 16.
        #[test]
        fn vocabulary_tree_reduce_matches_sequential_reduce(
            docs in corpus(),
            n_shards in 1usize..17,
        ) {
            let mut sequential = VocabularyBuilder::new();
            for builder in shard_builders(&docs, n_shards) {
                sequential.merge(builder);
            }
            let tree = tree_reduce(shard_builders(&docs, n_shards), |mut left, right| {
                left.merge(right);
                left
            })
            .expect("at least one shard");

            prop_assert_eq!(tree.n_documents(), sequential.n_documents());
            prop_assert_eq!(tree.n_terms(), sequential.n_terms());
            let tree_vocab = tree.build(1, None);
            let sequential_vocab = sequential.build(1, None);
            prop_assert_eq!(tree_vocab.terms(), sequential_vocab.terms());
            for term in sequential_vocab.terms() {
                prop_assert_eq!(
                    tree_vocab.term_frequency(term),
                    sequential_vocab.term_frequency(term)
                );
                prop_assert_eq!(
                    tree_vocab.document_frequency(term),
                    sequential_vocab.document_frequency(term)
                );
                // IDF is computed from (n_docs, df) only; bit-equality follows
                // from the integer equalities above, asserted to close the loop.
                prop_assert_eq!(
                    tree_vocab.idf(term).to_bits(),
                    sequential_vocab.idf(term).to_bits()
                );
            }
        }
    }
}

mod sparse_equivalence {
    use holistix_linalg::FeatureMatrix;
    use holistix_ml::{
        Classifier, CountVectorizer, GaussianNaiveBayes, LinearSvm, LinearSvmConfig,
        LogisticRegression, LogisticRegressionConfig, TfidfVectorizer, VectorizerOptions,
    };
    use proptest::prelude::*;

    /// Random corpora over a small alphabet so vocabularies overlap across docs.
    fn corpus() -> impl Strategy<Value = Vec<String>> {
        proptest::collection::vec("[a-f ]{0,60}", 1..24)
    }

    fn option_grid(variant: usize) -> VectorizerOptions {
        match variant % 4 {
            0 => VectorizerOptions::paper_default(),
            1 => VectorizerOptions {
                sublinear_tf: true,
                ..VectorizerOptions::paper_default()
            },
            2 => VectorizerOptions {
                l2_normalize: false,
                min_document_frequency: 2,
                ..VectorizerOptions::paper_default()
            },
            _ => VectorizerOptions {
                ngram_max: 2,
                remove_stopwords: false,
                ..VectorizerOptions::paper_default()
            },
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The sparse count transform is exactly the dense one: same shape, same
        /// entries, bit for bit.
        #[test]
        fn count_transform_sparse_equals_dense(docs in corpus(), variant in 0usize..4) {
            let options = option_grid(variant);
            let vectorizer = CountVectorizer::fit(&docs, options);
            let dense = vectorizer.transform(&docs);
            let sparse = vectorizer.transform_sparse(&docs);
            prop_assert_eq!(sparse.to_dense(), dense);
        }

        /// The sparse TF-IDF transform (including sublinear TF and L2
        /// normalisation) is bitwise equal to the dense one.
        #[test]
        fn tfidf_transform_sparse_equals_dense(docs in corpus(), variant in 0usize..4) {
            let options = option_grid(variant);
            let vectorizer = TfidfVectorizer::fit(&docs, options);
            let dense = vectorizer.transform(&docs);
            let sparse = vectorizer.transform_sparse(&docs);
            prop_assert_eq!(sparse.to_dense(), dense);
        }

        /// Out-of-vocabulary documents sparse-transform to all-zero rows, same as
        /// the dense path.
        #[test]
        fn oov_documents_are_empty_rows(docs in corpus()) {
            let vectorizer = TfidfVectorizer::fit(&docs, VectorizerOptions::paper_default());
            let sparse = vectorizer.transform_sparse(&["zzz qqq xyzzy", ""]);
            prop_assert_eq!(sparse.nnz(), 0);
            prop_assert_eq!(sparse.rows(), 2);
        }

        /// LR and SVM training and scoring over the sparse representation are
        /// bit-identical to dense training: every update the dense loop applies
        /// for a zero feature is an exact IEEE-754 identity.
        #[test]
        fn linear_models_sparse_fit_matches_dense(docs in corpus(), seed in 0u64..50) {
            let vectorizer = TfidfVectorizer::fit(&docs, VectorizerOptions::paper_default());
            let dense = FeatureMatrix::Dense(vectorizer.transform(&docs));
            let sparse = FeatureMatrix::Sparse(vectorizer.transform_sparse(&docs));
            let labels: Vec<usize> = (0..docs.len()).map(|i| i % 3).collect();

            let config = LogisticRegressionConfig { epochs: 12, seed, ..Default::default() };
            let mut lr_dense = LogisticRegression::new(config.clone());
            let mut lr_sparse = LogisticRegression::new(config);
            lr_dense.fit_features(&dense, &labels);
            lr_sparse.fit_features(&sparse, &labels);
            prop_assert_eq!(lr_dense.weights(), lr_sparse.weights());
            prop_assert_eq!(
                lr_dense.predict_proba_features(&dense),
                lr_sparse.predict_proba_features(&sparse)
            );

            let config = LinearSvmConfig { epochs: 12, seed, ..Default::default() };
            let mut svm_dense = LinearSvm::new(config.clone());
            let mut svm_sparse = LinearSvm::new(config);
            svm_dense.fit_features(&dense, &labels);
            svm_sparse.fit_features(&sparse, &labels);
            prop_assert_eq!(svm_dense.weights(), svm_sparse.weights());
            prop_assert_eq!(
                svm_dense.predict_features(&dense),
                svm_sparse.predict_features(&sparse)
            );
        }

        /// Gaussian NB's sparse sufficient-statistics fit and delta-trick scoring
        /// agree with the dense two-pass computation up to floating-point
        /// reordering, and produce the same hard predictions.
        #[test]
        fn naive_bayes_sparse_matches_dense(docs in corpus(), seed in 0u64..50) {
            let vectorizer = TfidfVectorizer::fit(&docs, VectorizerOptions::paper_default());
            let dense = FeatureMatrix::Dense(vectorizer.transform(&docs));
            let sparse = FeatureMatrix::Sparse(vectorizer.transform_sparse(&docs));
            let labels: Vec<usize> = (0..docs.len()).map(|i| (i as u64 + seed) as usize % 3).collect();

            let mut nb_dense = GaussianNaiveBayes::default_config();
            let mut nb_sparse = GaussianNaiveBayes::default_config();
            nb_dense.fit_features(&dense, &labels);
            nb_sparse.fit_features(&sparse, &labels);

            for (md, ms) in nb_dense.means().data().iter().zip(nb_sparse.means().data()) {
                prop_assert!((md - ms).abs() < 1e-9, "mean mismatch: {md} vs {ms}");
            }
            for (vd, vs) in nb_dense.variances().data().iter().zip(nb_sparse.variances().data()) {
                prop_assert!((vd - vs).abs() < 1e-7 * vd.abs().max(1.0), "variance mismatch: {vd} vs {vs}");
            }
            let pd = nb_dense.predict_proba_features(&dense);
            let ps = nb_sparse.predict_proba_features(&sparse);
            prop_assert_eq!(pd.shape(), ps.shape());
            for (a, b) in pd.data().iter().zip(ps.data()) {
                prop_assert!((a - b).abs() < 1e-6, "probability mismatch: {a} vs {b}");
            }
        }
    }
}
