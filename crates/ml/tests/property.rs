//! Property-based tests for the classical-ML stack: metric bounds and identities,
//! vectoriser invariants, and classifier probability sanity.

use holistix_linalg::Matrix;
use holistix_ml::{
    ClassificationReport, Classifier, ConfusionMatrix, GaussianNaiveBayes, LogisticRegression,
    LogisticRegressionConfig, TfidfVectorizer, VectorizerOptions,
};
use proptest::prelude::*;

fn labels_and_predictions() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    proptest::collection::vec((0usize..6, 0usize..6), 1..200)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All classification metrics are bounded in [0, 1], and accuracy equals the
    /// diagonal mass of the confusion matrix.
    #[test]
    fn metrics_are_bounded((gold, predicted) in labels_and_predictions()) {
        let report = ClassificationReport::from_labels(&gold, &predicted, 6);
        prop_assert!((0.0..=1.0).contains(&report.accuracy));
        prop_assert!((0.0..=1.0).contains(&report.macro_f1));
        prop_assert!((0.0..=1.0).contains(&report.weighted_f1));
        for class in &report.per_class {
            prop_assert!((0.0..=1.0).contains(&class.precision));
            prop_assert!((0.0..=1.0).contains(&class.recall));
            prop_assert!((0.0..=1.0).contains(&class.f1));
            // F1 lies between min and max of precision and recall.
            let lo = class.precision.min(class.recall);
            let hi = class.precision.max(class.recall);
            prop_assert!(class.f1 >= lo - 1e-12 && class.f1 <= hi + 1e-12);
        }
        let cm = ConfusionMatrix::from_labels(&gold, &predicted, 6);
        let diag: usize = (0..6).map(|c| cm.count(c, c)).sum();
        prop_assert!((report.accuracy - diag as f64 / gold.len() as f64).abs() < 1e-12);
        // Supports sum to the number of items.
        let support: usize = report.per_class.iter().map(|c| c.support).sum();
        prop_assert_eq!(support, gold.len());
    }

    /// Predicting gold labels exactly yields perfect metrics.
    #[test]
    fn perfect_prediction_is_perfect(gold in proptest::collection::vec(0usize..6, 1..100)) {
        let report = ClassificationReport::from_labels(&gold, &gold, 6);
        prop_assert!((report.accuracy - 1.0).abs() < 1e-12);
        for class in &report.per_class {
            if class.support > 0 {
                prop_assert!((class.f1 - 1.0).abs() < 1e-12);
            }
        }
    }

    /// TF-IDF features are non-negative, have the fitted width, and L2-normalised rows
    /// have norm 0 or 1.
    #[test]
    fn tfidf_matrix_invariants(docs in proptest::collection::vec("[a-f ]{0,40}", 1..20)) {
        let vectorizer = TfidfVectorizer::fit(&docs, VectorizerOptions::paper_default());
        let matrix = vectorizer.transform(&docs);
        prop_assert_eq!(matrix.rows(), docs.len());
        prop_assert_eq!(matrix.cols(), vectorizer.n_features());
        prop_assert!(matrix.data().iter().all(|&v| v >= 0.0 && v.is_finite()));
        for r in 0..matrix.rows() {
            let norm: f64 = matrix.row(r).iter().map(|v| v * v).sum::<f64>().sqrt();
            prop_assert!(norm < 1e-9 || (norm - 1.0).abs() < 1e-9);
        }
    }

    /// Classifier probability rows always sum to one and the argmax matches predict.
    #[test]
    fn classifier_probabilities_are_consistent(seed in 0u64..200) {
        // A small random-but-separable 3-class problem.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30usize {
            let class = i % 3;
            let offset = seed as f64 % 7.0;
            let mut row = vec![0.1, 0.1, 0.1];
            row[class] = 2.0 + offset * 0.1 + (i as f64) * 0.01;
            rows.push(row);
            labels.push(class);
        }
        let x = Matrix::from_rows(&rows);
        let mut lr = LogisticRegression::new(LogisticRegressionConfig { epochs: 50, seed, ..Default::default() });
        lr.fit(&x, &labels);
        let mut nb = GaussianNaiveBayes::default_config();
        nb.fit(&x, &labels);
        for model in [&lr as &dyn Classifier, &nb as &dyn Classifier] {
            let proba = model.predict_proba(&x);
            let preds = model.predict(&x);
            for r in 0..proba.rows() {
                prop_assert!((proba.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-6);
                prop_assert_eq!(holistix_linalg::argmax(proba.row(r)).unwrap(), preds[r]);
            }
        }
    }

    /// Averaging k copies of the same report reproduces that report.
    #[test]
    fn report_average_is_idempotent((gold, predicted) in labels_and_predictions(), k in 1usize..6) {
        let report = ClassificationReport::from_labels(&gold, &predicted, 6);
        let averaged = ClassificationReport::average(&vec![report.clone(); k]);
        prop_assert!((averaged.accuracy - report.accuracy).abs() < 1e-12);
        prop_assert!((averaged.macro_f1 - report.macro_f1).abs() < 1e-12);
    }
}
