//! Cross-validation driver.
//!
//! §III of the paper evaluates every baseline with 10-fold cross-validation and
//! reports per-class precision/recall/F1 and accuracy averaged over folds (Table IV).
//! The driver here is generic over a [`TextPipeline`] — anything that can be fitted on
//! raw texts and predict class indices — so the same harness runs the TF-IDF
//! baselines in this crate and the transformer baselines from `holistix-transformer`
//! (via the adapter in the core crate).
//!
//! Folds are independent, so they are trained in parallel with scoped threads when
//! `parallel` is requested. Within each fold, the vectoriser fit itself is the
//! sharded map-reduce of [`TfidfVectorizer::fit_parallel`]; a [`ThreadBudget`]
//! splits the machine between the two levels so `folds × shards` never
//! oversubscribes it. Shard count never changes results (the sharded fit is
//! bit-identical to the sequential one), so any budget produces the same report.

use crate::classifier::Classifier;
use crate::features::{TfidfVectorizer, VectorizerOptions};
use crate::metrics::ClassificationReport;
use crate::parallel::scoped_map;
use holistix_corpus::splits::CrossValidationFolds;
use holistix_linalg::FeatureMatrix;
use serde::{Deserialize, Serialize};

/// A text-in, label-out classification pipeline (feature extraction + model).
pub trait TextPipeline: Send {
    /// Fit the pipeline on training texts and labels.
    fn fit(&mut self, texts: &[&str], labels: &[usize]);
    /// Predict dense class indices for new texts.
    fn predict(&self, texts: &[&str]) -> Vec<usize>;
    /// Display name for reports.
    fn name(&self) -> String;
    /// How many threads `fit` may use for feature extraction. Pipelines whose
    /// fit is not sharded ignore this (the default), so the cross-validation
    /// driver can hand every pipeline its slice of the thread budget.
    fn set_fit_threads(&mut self, _n_threads: usize) {}
}

/// How many threads a cross-validation run may occupy in total, shared between
/// concurrent folds and each fold's sharded vectoriser fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadBudget {
    /// Total threads the run may use (`folds × per-fold shards ≤ threads`).
    pub threads: usize,
}

impl ThreadBudget {
    /// A budget of exactly `threads` threads (minimum 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The machine's available parallelism.
    pub fn machine() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Per-fold fit shards when `concurrent_folds` folds run at once:
    /// `threads / concurrent_folds`, at least 1, so the product stays within
    /// the budget.
    pub fn shards_per_fold(&self, concurrent_folds: usize) -> usize {
        (self.threads / concurrent_folds.max(1)).max(1)
    }
}

impl Default for ThreadBudget {
    fn default() -> Self {
        Self::machine()
    }
}

/// The standard classical pipeline: TF-IDF features into any [`Classifier`].
pub struct TfidfPipeline<C: Classifier> {
    options: VectorizerOptions,
    vectorizer: Option<TfidfVectorizer>,
    classifier: C,
    fit_threads: usize,
}

impl<C: Classifier> TfidfPipeline<C> {
    /// Build a pipeline around an (untrained) classifier.
    pub fn new(classifier: C, options: VectorizerOptions) -> Self {
        Self {
            options,
            vectorizer: None,
            classifier,
            fit_threads: 1,
        }
    }

    /// Build with paper-default vectoriser options.
    pub fn with_default_features(classifier: C) -> Self {
        Self::new(classifier, VectorizerOptions::paper_default())
    }

    /// Shard the vectoriser fit across `n_threads` threads (builder form of
    /// [`TextPipeline::set_fit_threads`]).
    pub fn with_fit_threads(mut self, n_threads: usize) -> Self {
        self.fit_threads = n_threads.max(1);
        self
    }

    /// Access the fitted vectoriser (after `fit`).
    pub fn vectorizer(&self) -> Option<&TfidfVectorizer> {
        self.vectorizer.as_ref()
    }

    /// Access the inner classifier.
    pub fn classifier(&self) -> &C {
        &self.classifier
    }
}

impl<C: Classifier + Send> TextPipeline for TfidfPipeline<C> {
    fn fit(&mut self, texts: &[&str], labels: &[usize]) {
        // One tokenisation pass, sharded across the pipeline's thread share;
        // CSR end to end: the dense documents × vocabulary grid is never built.
        let (vectorizer, features) = TfidfVectorizer::fit_transform_sparse_parallel(
            texts,
            self.options.clone(),
            self.fit_threads,
        );
        self.classifier
            .fit_features(&FeatureMatrix::Sparse(features), labels);
        self.vectorizer = Some(vectorizer);
    }

    fn predict(&self, texts: &[&str]) -> Vec<usize> {
        let vectorizer = self
            .vectorizer
            .as_ref()
            .expect("TfidfPipeline::predict called before fit");
        let features = FeatureMatrix::Sparse(vectorizer.transform_sparse(texts));
        self.classifier.predict_features(&features)
    }

    fn name(&self) -> String {
        self.classifier.name().to_string()
    }

    fn set_fit_threads(&mut self, n_threads: usize) {
        self.fit_threads = n_threads.max(1);
    }
}

/// The outcome of a single cross-validation fold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldOutcome {
    /// Fold index (0-based).
    pub fold: usize,
    /// Metrics on the fold's held-out test set.
    pub report: ClassificationReport,
}

/// The result of a full cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidationReport {
    /// Name of the evaluated pipeline.
    pub model_name: String,
    /// Per-fold outcomes, in fold order.
    pub fold_outcomes: Vec<FoldOutcome>,
    /// Metrics averaged over folds — the numbers a Table IV row reports.
    pub averaged: ClassificationReport,
}

impl CrossValidationReport {
    /// Standard deviation of accuracy across folds (a stability indicator).
    pub fn accuracy_std(&self) -> f64 {
        let accs: Vec<f64> = self
            .fold_outcomes
            .iter()
            .map(|f| f.report.accuracy)
            .collect();
        if accs.len() < 2 {
            return 0.0;
        }
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        (accs.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / accs.len() as f64).sqrt()
    }
}

/// Run cross-validation of a pipeline over pre-computed folds with the
/// machine's full thread budget. See [`cross_validate_budgeted`].
pub fn cross_validate<P, F>(
    texts: &[&str],
    labels: &[usize],
    n_classes: usize,
    folds: &CrossValidationFolds,
    make_pipeline: F,
    parallel: bool,
) -> CrossValidationReport
where
    P: TextPipeline,
    F: Fn() -> P + Sync,
{
    cross_validate_budgeted(
        texts,
        labels,
        n_classes,
        folds,
        make_pipeline,
        parallel,
        ThreadBudget::machine(),
    )
}

/// Run cross-validation of a pipeline over pre-computed folds.
///
/// `make_pipeline` is called once per fold (so every fold trains a fresh model).
/// When `parallel` is true, folds run on scoped threads; results are returned in fold
/// order either way. Determinism is preserved because each fold's pipeline derives all
/// randomness from its own configuration, not from execution order — and because the
/// sharded vectoriser fit is bit-identical for every shard count.
///
/// `budget` is shared across the two levels of parallelism: parallel folds run
/// in waves of at most `budget.threads` concurrent folds, and every running
/// fold's fit gets `budget.threads / concurrent_folds` shards (at least 1), so
/// `concurrent folds × shards ≤ budget.threads` even when there are more folds
/// than threads; sequential folds each get the whole budget, since only one
/// fold is fitting at a time.
pub fn cross_validate_budgeted<P, F>(
    texts: &[&str],
    labels: &[usize],
    n_classes: usize,
    folds: &CrossValidationFolds,
    make_pipeline: F,
    parallel: bool,
    budget: ThreadBudget,
) -> CrossValidationReport
where
    P: TextPipeline,
    F: Fn() -> P + Sync,
{
    assert_eq!(texts.len(), labels.len(), "texts/labels length mismatch");
    assert!(
        !folds.is_empty(),
        "cross_validate requires at least one fold"
    );

    // Cap fold concurrency at the budget, then split what remains between
    // each running fold's fit shards: concurrent_folds × fit_threads ≤ budget.
    let concurrent_folds = if parallel {
        folds.len().min(budget.threads)
    } else {
        1
    };
    let fit_threads = budget.shards_per_fold(concurrent_folds);

    let run_fold = |fold_idx: usize| -> FoldOutcome {
        let fold = &folds.folds[fold_idx];
        let train_texts: Vec<&str> = fold.train.iter().map(|&i| texts[i]).collect();
        let train_labels: Vec<usize> = fold.train.iter().map(|&i| labels[i]).collect();
        let test_texts: Vec<&str> = fold.test.iter().map(|&i| texts[i]).collect();
        let test_labels: Vec<usize> = fold.test.iter().map(|&i| labels[i]).collect();
        let mut pipeline = make_pipeline();
        pipeline.set_fit_threads(fit_threads);
        pipeline.fit(&train_texts, &train_labels);
        let predictions = pipeline.predict(&test_texts);
        FoldOutcome {
            fold: fold_idx,
            report: ClassificationReport::from_labels(&test_labels, &predictions, n_classes),
        }
    };

    let fold_outcomes: Vec<FoldOutcome> = if parallel && concurrent_folds > 1 {
        // Waves of at most `concurrent_folds` fold threads, so the budget is
        // enforced rather than merely divided by: a 2-thread budget over 10
        // folds runs 2 at a time, never all 10 at once. Waves run in fold
        // order, so outcomes concatenate back in fold order.
        let indices: Vec<usize> = (0..folds.len()).collect();
        indices
            .chunks(concurrent_folds)
            .flat_map(|wave| scoped_map(wave, |&i| run_fold(i)))
            .collect()
    } else {
        (0..folds.len()).map(run_fold).collect()
    };

    let averaged = ClassificationReport::average(
        &fold_outcomes
            .iter()
            .map(|f| f.report.clone())
            .collect::<Vec<_>>(),
    );
    let model_name = make_pipeline().name();
    CrossValidationReport {
        model_name,
        fold_outcomes,
        averaged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::LogisticRegression;
    use crate::naive_bayes::GaussianNaiveBayes;
    use holistix_corpus::generator::HolistixCorpus;
    use holistix_corpus::splits::kfold_stratified;

    fn small_task() -> (Vec<String>, Vec<usize>) {
        let corpus = HolistixCorpus::generate_small(180, 13);
        let texts: Vec<String> = corpus.posts.iter().map(|p| p.post.text.clone()).collect();
        let labels = corpus.label_indices();
        (texts, labels)
    }

    #[test]
    fn logistic_pipeline_beats_chance_on_synthetic_corpus() {
        let (texts, labels) = small_task();
        let text_refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let folds = kfold_stratified(&labels, 6, 4, 3);
        let report = cross_validate(
            &text_refs,
            &labels,
            6,
            &folds,
            || TfidfPipeline::with_default_features(LogisticRegression::default_config()),
            false,
        );
        assert_eq!(report.fold_outcomes.len(), 4);
        assert!(
            report.averaged.accuracy > 0.4,
            "accuracy {}",
            report.averaged.accuracy
        );
        assert_eq!(report.model_name, "LR");
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (texts, labels) = small_task();
        let text_refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let folds = kfold_stratified(&labels, 6, 3, 5);
        let make = || TfidfPipeline::with_default_features(GaussianNaiveBayes::default_config());
        let seq = cross_validate(&text_refs, &labels, 6, &folds, make, false);
        let par = cross_validate(&text_refs, &labels, 6, &folds, make, true);
        assert_eq!(seq.fold_outcomes, par.fold_outcomes);
    }

    #[test]
    fn thread_budget_never_changes_results() {
        // The same folds under wildly different budgets (1 thread, or 8 shared
        // across 3 parallel folds) must produce bit-identical reports: the
        // sharded fit is exact, and the budget only moves work between threads.
        let (texts, labels) = small_task();
        let text_refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let folds = kfold_stratified(&labels, 6, 3, 9);
        let make = || TfidfPipeline::with_default_features(LogisticRegression::default_config());
        let single = cross_validate_budgeted(
            &text_refs,
            &labels,
            6,
            &folds,
            make,
            false,
            ThreadBudget::new(1),
        );
        let budgeted = cross_validate_budgeted(
            &text_refs,
            &labels,
            6,
            &folds,
            make,
            true,
            ThreadBudget::new(8),
        );
        assert_eq!(single.fold_outcomes, budgeted.fold_outcomes);
    }

    #[test]
    fn thread_budget_splits_between_folds_and_shards() {
        // folds × shards ≤ budget, with a floor of one shard per fold.
        assert_eq!(ThreadBudget::new(8).shards_per_fold(3), 2);
        assert_eq!(ThreadBudget::new(8).shards_per_fold(1), 8);
        assert_eq!(ThreadBudget::new(2).shards_per_fold(3), 1);
        assert_eq!(ThreadBudget::new(0).threads, 1);
        assert!(ThreadBudget::machine().threads >= 1);
    }

    #[test]
    fn fold_reports_are_in_fold_order() {
        let (texts, labels) = small_task();
        let text_refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let folds = kfold_stratified(&labels, 6, 3, 1);
        let report = cross_validate(
            &text_refs,
            &labels,
            6,
            &folds,
            || TfidfPipeline::with_default_features(LogisticRegression::default_config()),
            true,
        );
        for (i, fo) in report.fold_outcomes.iter().enumerate() {
            assert_eq!(fo.fold, i);
        }
    }

    #[test]
    fn accuracy_std_is_finite_and_small_for_identical_folds() {
        let (texts, labels) = small_task();
        let text_refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let folds = kfold_stratified(&labels, 6, 3, 2);
        let report = cross_validate(
            &text_refs,
            &labels,
            6,
            &folds,
            || TfidfPipeline::with_default_features(LogisticRegression::default_config()),
            false,
        );
        assert!(report.accuracy_std() >= 0.0);
        assert!(report.accuracy_std() < 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one fold")]
    fn empty_folds_panic() {
        let folds = CrossValidationFolds {
            folds: vec![],
            n_items: 0,
        };
        let _ = cross_validate(
            &[],
            &[],
            6,
            &folds,
            || TfidfPipeline::with_default_features(LogisticRegression::default_config()),
            false,
        );
    }
}
