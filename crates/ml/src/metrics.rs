//! Classification metrics: confusion matrix, per-class precision/recall/F1, accuracy.
//!
//! These are the quantities of Table IV: precision (P), recall (R) and F-score (F) for
//! each of the six wellness dimensions plus overall accuracy, averaged over 10 folds.
//! Per-class metrics follow the usual one-vs-rest definitions; classes absent from
//! both predictions and gold labels get 0 for all three (the scikit-learn
//! `zero_division=0` convention the paper's scripts use).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense confusion matrix: `counts[gold][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
    n_classes: usize,
}

impl ConfusionMatrix {
    /// Build from gold and predicted label sequences.
    pub fn from_labels(gold: &[usize], predicted: &[usize], n_classes: usize) -> Self {
        assert_eq!(
            gold.len(),
            predicted.len(),
            "gold/predicted length mismatch"
        );
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&g, &p) in gold.iter().zip(predicted) {
            assert!(g < n_classes && p < n_classes, "label out of range");
            counts[g][p] += 1;
        }
        Self { counts, n_classes }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Count of items with gold class `gold` predicted as `predicted`.
    pub fn count(&self, gold: usize, predicted: usize) -> usize {
        self.counts[gold][predicted]
    }

    /// Total number of items.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|r| r.iter().sum::<usize>()).sum()
    }

    /// True positives for a class.
    pub fn true_positives(&self, class: usize) -> usize {
        self.counts[class][class]
    }

    /// False positives for a class (predicted as `class` but gold differs).
    pub fn false_positives(&self, class: usize) -> usize {
        (0..self.n_classes)
            .filter(|&g| g != class)
            .map(|g| self.counts[g][class])
            .sum()
    }

    /// False negatives for a class (gold `class` predicted as something else).
    pub fn false_negatives(&self, class: usize) -> usize {
        (0..self.n_classes)
            .filter(|&p| p != class)
            .map(|p| self.counts[class][p])
            .sum()
    }

    /// Number of gold items of a class.
    pub fn support(&self, class: usize) -> usize {
        self.counts[class].iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.n_classes).map(|c| self.counts[c][c]).sum();
        correct as f64 / total as f64
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "gold \\ pred {}",
            (0..self.n_classes)
                .map(|c| format!("{c:>6}"))
                .collect::<String>()
        )?;
        for (g, row) in self.counts.iter().enumerate() {
            writeln!(
                f,
                "{g:>11} {}",
                row.iter().map(|c| format!("{c:>6}")).collect::<String>()
            )?;
        }
        Ok(())
    }
}

/// Precision, recall, F1 and support for a single class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Precision = TP / (TP + FP); 0 when undefined.
    pub precision: f64,
    /// Recall = TP / (TP + FN); 0 when undefined.
    pub recall: f64,
    /// F1 = harmonic mean of precision and recall; 0 when undefined.
    pub f1: f64,
    /// Number of gold examples of the class.
    pub support: usize,
}

impl ClassMetrics {
    /// Compute from raw counts.
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Self {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
            support: tp + fn_,
        }
    }
}

/// A full classification report: per-class metrics plus aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// Per-class metrics, indexed by dense class id.
    pub per_class: Vec<ClassMetrics>,
    /// Overall accuracy.
    pub accuracy: f64,
    /// Unweighted mean of the per-class metrics.
    pub macro_precision: f64,
    /// Unweighted mean recall.
    pub macro_recall: f64,
    /// Unweighted mean F1.
    pub macro_f1: f64,
    /// Support-weighted mean F1.
    pub weighted_f1: f64,
}

impl ClassificationReport {
    /// Compute a report from gold and predicted labels.
    pub fn from_labels(gold: &[usize], predicted: &[usize], n_classes: usize) -> Self {
        let cm = ConfusionMatrix::from_labels(gold, predicted, n_classes);
        Self::from_confusion(&cm)
    }

    /// Compute a report from a confusion matrix.
    pub fn from_confusion(cm: &ConfusionMatrix) -> Self {
        let n = cm.n_classes();
        let per_class: Vec<ClassMetrics> = (0..n)
            .map(|c| {
                ClassMetrics::from_counts(
                    cm.true_positives(c),
                    cm.false_positives(c),
                    cm.false_negatives(c),
                )
            })
            .collect();
        let total_support: usize = per_class.iter().map(|m| m.support).sum();
        let macro_precision = mean(per_class.iter().map(|m| m.precision));
        let macro_recall = mean(per_class.iter().map(|m| m.recall));
        let macro_f1 = mean(per_class.iter().map(|m| m.f1));
        let weighted_f1 = if total_support == 0 {
            0.0
        } else {
            per_class
                .iter()
                .map(|m| m.f1 * m.support as f64)
                .sum::<f64>()
                / total_support as f64
        };
        Self {
            per_class,
            accuracy: cm.accuracy(),
            macro_precision,
            macro_recall,
            macro_f1,
            weighted_f1,
        }
    }

    /// Metrics for one class.
    pub fn class(&self, class: usize) -> &ClassMetrics {
        &self.per_class[class]
    }

    /// Element-wise average of several reports (used to average over CV folds).
    /// Panics if the reports have different class counts or the slice is empty.
    pub fn average(reports: &[ClassificationReport]) -> ClassificationReport {
        assert!(!reports.is_empty(), "cannot average zero reports");
        let n_classes = reports[0].per_class.len();
        assert!(
            reports.iter().all(|r| r.per_class.len() == n_classes),
            "reports have differing class counts"
        );
        let k = reports.len() as f64;
        let per_class = (0..n_classes)
            .map(|c| ClassMetrics {
                precision: reports
                    .iter()
                    .map(|r| r.per_class[c].precision)
                    .sum::<f64>()
                    / k,
                recall: reports.iter().map(|r| r.per_class[c].recall).sum::<f64>() / k,
                f1: reports.iter().map(|r| r.per_class[c].f1).sum::<f64>() / k,
                support: (reports
                    .iter()
                    .map(|r| r.per_class[c].support)
                    .sum::<usize>() as f64
                    / k)
                    .round() as usize,
            })
            .collect();
        ClassificationReport {
            per_class,
            accuracy: reports.iter().map(|r| r.accuracy).sum::<f64>() / k,
            macro_precision: reports.iter().map(|r| r.macro_precision).sum::<f64>() / k,
            macro_recall: reports.iter().map(|r| r.macro_recall).sum::<f64>() / k,
            macro_f1: reports.iter().map(|r| r.macro_f1).sum::<f64>() / k,
            weighted_f1: reports.iter().map(|r| r.weighted_f1).sum::<f64>() / k,
        }
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let collected: Vec<f64> = values.collect();
    if collected.is_empty() {
        0.0
    } else {
        collected.iter().sum::<f64>() / collected.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_counts() {
        let gold = vec![0, 0, 1, 1, 2, 2];
        let pred = vec![0, 1, 1, 1, 2, 0];
        let cm = ConfusionMatrix::from_labels(&gold, &pred, 3);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(2, 0), 1);
        assert_eq!(cm.total(), 6);
        assert_eq!(cm.true_positives(1), 2);
        assert_eq!(cm.false_positives(1), 1);
        assert_eq!(cm.false_negatives(2), 1);
        assert_eq!(cm.support(0), 2);
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictions_give_ones() {
        let gold = vec![0, 1, 2, 0, 1, 2];
        let report = ClassificationReport::from_labels(&gold, &gold, 3);
        assert_eq!(report.accuracy, 1.0);
        for m in &report.per_class {
            assert_eq!(m.precision, 1.0);
            assert_eq!(m.recall, 1.0);
            assert_eq!(m.f1, 1.0);
        }
        assert_eq!(report.macro_f1, 1.0);
        assert_eq!(report.weighted_f1, 1.0);
    }

    #[test]
    fn hand_computed_metrics() {
        // Class 0: TP=1 FP=1 FN=1 -> P=0.5 R=0.5 F1=0.5
        let gold = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 0, 1];
        let report = ClassificationReport::from_labels(&gold, &pred, 2);
        let c0 = report.class(0);
        assert!((c0.precision - 0.5).abs() < 1e-12);
        assert!((c0.recall - 0.5).abs() < 1e-12);
        assert!((c0.f1 - 0.5).abs() < 1e-12);
        assert_eq!(c0.support, 2);
        assert!((report.accuracy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absent_class_gets_zero_metrics() {
        // Class 2 never appears in gold or predictions.
        let gold = vec![0, 1, 0, 1];
        let pred = vec![0, 1, 1, 1];
        let report = ClassificationReport::from_labels(&gold, &pred, 3);
        let c2 = report.class(2);
        assert_eq!(c2.precision, 0.0);
        assert_eq!(c2.recall, 0.0);
        assert_eq!(c2.f1, 0.0);
        assert_eq!(c2.support, 0);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let m = ClassMetrics::from_counts(3, 1, 2);
        // P = 0.75, R = 0.6, F1 = 2*0.75*0.6/1.35 = 0.6667
        assert!((m.precision - 0.75).abs() < 1e-12);
        assert!((m.recall - 0.6).abs() < 1e-12);
        assert!((m.f1 - 2.0 * 0.75 * 0.6 / 1.35).abs() < 1e-12);
    }

    #[test]
    fn averaging_reports_is_elementwise() {
        let gold = vec![0, 1];
        let r1 = ClassificationReport::from_labels(&gold, &[0, 1], 2); // perfect
        let r2 = ClassificationReport::from_labels(&gold, &[1, 0], 2); // all wrong
        let avg = ClassificationReport::average(&[r1, r2]);
        assert!((avg.accuracy - 0.5).abs() < 1e-12);
        assert!((avg.class(0).f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot average zero reports")]
    fn averaging_zero_reports_panics() {
        let _ = ClassificationReport::average(&[]);
    }

    #[test]
    fn weighted_f1_reflects_support() {
        // Majority class classified perfectly, minority always wrong: weighted F1 should
        // exceed macro F1.
        let gold = vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 1];
        let pred = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let report = ClassificationReport::from_labels(&gold, &pred, 2);
        assert!(report.weighted_f1 > report.macro_f1);
    }

    #[test]
    fn empty_input_is_all_zero() {
        let report = ClassificationReport::from_labels(&[], &[], 3);
        assert_eq!(report.accuracy, 0.0);
        assert_eq!(report.macro_f1, 0.0);
    }
}
