//! # holistix-ml
//!
//! Classical machine-learning baselines for the Holistix reproduction.
//!
//! §III-A of the paper establishes traditional baselines — TF-IDF features fed into
//! logistic regression, a linear SVM and Gaussian Naive Bayes (scikit-learn) — and
//! evaluates them with per-class precision/recall/F1 and accuracy averaged over
//! 10-fold cross-validation (Table IV). This crate reimplements that entire stack from
//! scratch:
//!
//! * [`features`] — TF-IDF and raw-count vectorisers with configurable analyzers
//!   (stop-word removal, stemming, n-grams, vocabulary caps). Fitting is a
//!   sharded map-reduce over document chunks
//!   ([`TfidfVectorizer::fit_parallel`](features::TfidfVectorizer::fit_parallel)):
//!   per-shard analyzers + vocabulary builders on scoped threads, an
//!   integer-exact merge, one IDF computation — bit-identical to the
//!   sequential fit for every shard count, with a one-tokenisation-pass
//!   fit + CSR transform
//!   ([`fit_transform_sparse_parallel`](features::TfidfVectorizer::fit_transform_sparse_parallel)),
//! * [`classifier`] — the [`Classifier`](classifier::Classifier) trait shared by every
//!   baseline (classical and transformer alike, via the core crate's adapters),
//! * [`logistic`] — multinomial logistic regression trained with mini-batch SGD + L2,
//! * [`svm`] — one-vs-rest linear SVM with hinge loss (the `LinearSVC`-style baseline),
//! * [`naive_bayes`] — Gaussian Naive Bayes with variance smoothing,
//! * [`metrics`] — confusion matrices, per-class precision/recall/F1, macro and
//!   weighted averages, accuracy,
//! * [`cv`] — the stratified k-fold cross-validation driver that produces the
//!   Table IV rows (per-class metrics averaged over folds), with optional parallel
//!   fold execution and a [`ThreadBudget`](cv::ThreadBudget) shared between
//!   concurrent folds and each fold's sharded vectoriser fit
//!   (`folds × shards ≤ budget`).

pub mod classifier;
pub mod cv;
pub mod features;
pub mod logistic;
pub mod metrics;
pub mod naive_bayes;
pub mod parallel;
pub mod svm;

pub use classifier::Classifier;
pub use cv::{
    cross_validate, cross_validate_budgeted, CrossValidationReport, FoldOutcome, TextPipeline,
    TfidfPipeline, ThreadBudget,
};
pub use features::{CountVectorizer, TfidfVectorizer, VectorizerOptions};
pub use logistic::{LogisticRegression, LogisticRegressionConfig};
pub use metrics::{ClassMetrics, ClassificationReport, ConfusionMatrix};
pub use naive_bayes::{GaussianNaiveBayes, GaussianNbConfig};
pub use parallel::{scoped_map, tree_reduce};
pub use svm::{LinearSvm, LinearSvmConfig};
