//! Gaussian Naive Bayes.
//!
//! The "Gaussian NB" row of Table IV. Each feature is modelled as a per-class Gaussian
//! with variance smoothing (scikit-learn's `var_smoothing`), and class log-priors come
//! from the training label frequencies. The paper notes GaussianNB "assumes feature
//! independence, which may not hold" and "is sensitive to deviations in feature
//! distribution from the assumed Gaussian" — on L2-normalised TF-IDF features this is
//! exactly why it is the weakest baseline in Table IV, and the same effect reproduces
//! here.

use crate::classifier::Classifier;
use holistix_linalg::{softmax, CsrMatrix, FeatureMatrix, Matrix};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`GaussianNaiveBayes`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianNbConfig {
    /// Portion of the largest feature variance added to every variance for stability
    /// (scikit-learn default: 1e-9).
    pub var_smoothing: f64,
}

impl Default for GaussianNbConfig {
    fn default() -> Self {
        Self {
            var_smoothing: 1e-9,
        }
    }
}

/// Gaussian Naive Bayes classifier.
#[derive(Debug, Clone)]
pub struct GaussianNaiveBayes {
    config: GaussianNbConfig,
    /// Per-class feature means (`n_classes × n_features`).
    means: Matrix,
    /// Per-class feature variances (`n_classes × n_features`).
    variances: Matrix,
    /// Per-class log prior.
    log_priors: Vec<f64>,
    n_classes: usize,
    name: String,
}

impl GaussianNaiveBayes {
    /// New untrained model.
    pub fn new(config: GaussianNbConfig) -> Self {
        Self {
            config,
            means: Matrix::zeros(0, 0),
            variances: Matrix::zeros(0, 0),
            log_priors: Vec::new(),
            n_classes: 0,
            name: "Gaussian NB".to_string(),
        }
    }

    /// New model with default configuration.
    pub fn default_config() -> Self {
        Self::new(GaussianNbConfig::default())
    }

    /// Per-class feature means.
    pub fn means(&self) -> &Matrix {
        &self.means
    }

    /// Per-class feature variances (after smoothing).
    pub fn variances(&self) -> &Matrix {
        &self.variances
    }

    /// Fit from a CSR matrix without densifying. Means and variances come from
    /// per-class sufficient statistics over the stored entries only — for the
    /// variance, the `n_c · μ²` mass of the implicit zeros is added analytically,
    /// so the result matches the dense two-pass computation up to floating-point
    /// reordering (the equivalence property test uses a small tolerance).
    fn fit_sparse(&mut self, features: &CsrMatrix, labels: &[usize]) {
        assert_eq!(
            features.rows(),
            labels.len(),
            "feature/label length mismatch"
        );
        assert!(!labels.is_empty(), "cannot fit on an empty training set");
        let n_features = features.cols();
        self.n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        self.means = Matrix::zeros(self.n_classes, n_features);
        self.variances = Matrix::zeros(self.n_classes, n_features);
        self.log_priors = vec![f64::NEG_INFINITY; self.n_classes];

        let mut counts = vec![0usize; self.n_classes];
        for &l in labels {
            counts[l] += 1;
        }

        // Means from the stored entries (zeros contribute nothing).
        for (i, &l) in labels.iter().enumerate() {
            let m = self.means.row_mut(l);
            for (j, x) in features.row_entries(i) {
                m[j] += x;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let inv = 1.0 / count as f64;
            for mj in self.means.row_mut(c) {
                *mj *= inv;
            }
        }

        // Σ_i (x_ij - μ_cj)² = n_c μ_cj² + Σ_{stored} ((x - μ)² - μ²): seed each
        // accumulator with the implicit-zero mass, then correct per stored entry.
        for (c, &count) in counts.iter().enumerate() {
            let n_c = count as f64;
            let mu: Vec<f64> = self.means.row(c).to_vec();
            let v = self.variances.row_mut(c);
            for (vj, &muj) in v.iter_mut().zip(&mu) {
                *vj = n_c * muj * muj;
            }
        }
        for (i, &l) in labels.iter().enumerate() {
            let mu: Vec<f64> = self.means.row(l).to_vec();
            let v = self.variances.row_mut(l);
            for (j, x) in features.row_entries(i) {
                let d = x - mu[j];
                v[j] += d * d - mu[j] * mu[j];
            }
        }
        let mut max_var = 0.0f64;
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let inv = 1.0 / count as f64;
            for vj in self.variances.row_mut(c) {
                // Cancellation in the corrected sum can leave a tiny negative
                // residue where the true variance is zero; clamp before smoothing.
                *vj = (*vj * inv).max(0.0);
                max_var = max_var.max(*vj);
            }
        }
        let eps = (self.config.var_smoothing * max_var).max(1e-12);
        self.variances.map_inplace(|v| v + eps);

        let n = labels.len() as f64;
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                self.log_priors[c] = (count as f64 / n).ln();
            }
        }
    }

    /// Joint log-likelihood over CSR features without densifying: per class, the
    /// all-zero log-likelihood `log P(c) + Σ_j log N(0; μ, σ²)` is precomputed
    /// once, and each stored entry contributes the difference
    /// `log N(x) - log N(0) = -((x - μ)² - μ²) / 2σ²  =  -x(x - 2μ) / 2σ²`.
    fn joint_log_likelihood_sparse(&self, features: &CsrMatrix) -> Matrix {
        assert!(self.n_classes > 0, "predict called before fit");
        assert_eq!(features.cols(), self.means.cols(), "feature width mismatch");
        let ln_2pi = (2.0 * std::f64::consts::PI).ln();
        // Per-class baseline: log-likelihood of the all-zero row.
        let baselines: Vec<f64> = (0..self.n_classes)
            .map(|c| {
                let mu = self.means.row(c);
                let var = self.variances.row(c);
                let mut ll = self.log_priors[c];
                for j in 0..mu.len() {
                    ll += -0.5 * (ln_2pi + var[j].ln() + mu[j] * mu[j] / var[j]);
                }
                ll
            })
            .collect();
        let mut out = Matrix::zeros(features.rows(), self.n_classes);
        for r in 0..features.rows() {
            for c in 0..self.n_classes {
                let mu = self.means.row(c);
                let var = self.variances.row(c);
                let mut ll = baselines[c];
                for (j, x) in features.row_entries(r) {
                    ll += -0.5 * x * (x - 2.0 * mu[j]) / var[j];
                }
                out[(r, c)] = ll;
            }
        }
        out
    }

    /// Joint log-likelihood `log P(class) + Σ log N(x_j; μ_cj, σ²_cj)` per class.
    pub fn joint_log_likelihood(&self, features: &Matrix) -> Matrix {
        assert!(self.n_classes > 0, "predict called before fit");
        let mut out = Matrix::zeros(features.rows(), self.n_classes);
        let ln_2pi = (2.0 * std::f64::consts::PI).ln();
        for r in 0..features.rows() {
            let x = features.row(r);
            for c in 0..self.n_classes {
                let mu = self.means.row(c);
                let var = self.variances.row(c);
                let mut ll = self.log_priors[c];
                for j in 0..x.len() {
                    let diff = x[j] - mu[j];
                    ll += -0.5 * (ln_2pi + var[j].ln() + diff * diff / var[j]);
                }
                out[(r, c)] = ll;
            }
        }
        out
    }
}

impl Classifier for GaussianNaiveBayes {
    fn fit(&mut self, features: &Matrix, labels: &[usize]) {
        assert_eq!(
            features.rows(),
            labels.len(),
            "feature/label length mismatch"
        );
        assert!(!labels.is_empty(), "cannot fit on an empty training set");
        let n_features = features.cols();
        self.n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        self.means = Matrix::zeros(self.n_classes, n_features);
        self.variances = Matrix::zeros(self.n_classes, n_features);
        self.log_priors = vec![f64::NEG_INFINITY; self.n_classes];

        let mut counts = vec![0usize; self.n_classes];
        for &l in labels {
            counts[l] += 1;
        }

        // Per-class means.
        for (i, &l) in labels.iter().enumerate() {
            let x = features.row(i);
            let m = self.means.row_mut(l);
            for (mj, &xj) in m.iter_mut().zip(x) {
                *mj += xj;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let inv = 1.0 / count as f64;
            for mj in self.means.row_mut(c) {
                *mj *= inv;
            }
        }

        // Per-class variances.
        for (i, &l) in labels.iter().enumerate() {
            let x = features.row(i);
            // Indexing through a temporary copy of the mean row avoids aliasing the
            // mutable variance row.
            let mu: Vec<f64> = self.means.row(l).to_vec();
            let v = self.variances.row_mut(l);
            for j in 0..x.len() {
                let d = x[j] - mu[j];
                v[j] += d * d;
            }
        }
        let mut max_var = 0.0f64;
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let inv = 1.0 / count as f64;
            for vj in self.variances.row_mut(c) {
                *vj *= inv;
                max_var = max_var.max(*vj);
            }
        }
        // Variance smoothing keeps the log-pdf finite for constant features.
        let eps = (self.config.var_smoothing * max_var).max(1e-12);
        self.variances.map_inplace(|v| v + eps);

        // Log priors.
        let n = labels.len() as f64;
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                self.log_priors[c] = (count as f64 / n).ln();
            }
        }
    }

    fn predict_proba(&self, features: &Matrix) -> Matrix {
        let jll = self.joint_log_likelihood(features);
        let mut out = Matrix::zeros(jll.rows(), self.n_classes);
        for r in 0..jll.rows() {
            out.set_row(r, &softmax(jll.row(r)));
        }
        out
    }

    fn fit_features(&mut self, features: &FeatureMatrix, labels: &[usize]) {
        match features {
            FeatureMatrix::Dense(m) => self.fit(m, labels),
            FeatureMatrix::Sparse(m) => self.fit_sparse(m, labels),
        }
    }

    fn predict_proba_features(&self, features: &FeatureMatrix) -> Matrix {
        match features {
            FeatureMatrix::Dense(m) => self.predict_proba(m),
            FeatureMatrix::Sparse(m) => {
                let jll = self.joint_log_likelihood_sparse(m);
                let mut out = Matrix::zeros(jll.rows(), self.n_classes);
                for r in 0..jll.rows() {
                    out.set_row(r, &softmax(jll.row(r)));
                }
                out
            }
        }
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_toy() -> (Matrix, Vec<usize>) {
        // Two well-separated Gaussian blobs plus a third offset blob.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let t = (i as f64) * 0.01;
            rows.push(vec![0.0 + t, 0.0 - t]);
            labels.push(0);
            rows.push(vec![5.0 - t, 5.0 + t]);
            labels.push(1);
            rows.push(vec![-5.0 + t, 5.0 - t]);
            labels.push(2);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn separates_gaussian_blobs() {
        let (x, y) = gaussian_toy();
        let mut clf = GaussianNaiveBayes::default_config();
        clf.fit(&x, &y);
        let preds = clf.predict(&x);
        let acc = preds.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.99, "accuracy {acc}");
    }

    #[test]
    fn class_means_are_recovered() {
        let (x, y) = gaussian_toy();
        let mut clf = GaussianNaiveBayes::default_config();
        clf.fit(&x, &y);
        assert!((clf.means()[(1, 0)] - 5.0).abs() < 0.2);
        assert!((clf.means()[(2, 0)] + 5.0).abs() < 0.2);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = gaussian_toy();
        let mut clf = GaussianNaiveBayes::default_config();
        clf.fit(&x, &y);
        let proba = clf.predict_proba(&x);
        for r in 0..proba.rows() {
            assert!((proba.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_features_do_not_produce_nan() {
        // Second feature is constant: variance smoothing must keep things finite.
        let x = Matrix::from_rows(&[
            vec![0.0, 1.0],
            vec![0.1, 1.0],
            vec![5.0, 1.0],
            vec![5.1, 1.0],
        ]);
        let y = vec![0, 0, 1, 1];
        let mut clf = GaussianNaiveBayes::default_config();
        clf.fit(&x, &y);
        let proba = clf.predict_proba(&x);
        assert!(!proba.has_non_finite());
        assert_eq!(clf.predict(&x), y);
    }

    #[test]
    fn priors_reflect_class_imbalance() {
        let x = Matrix::from_rows(&[
            vec![0.0],
            vec![0.0],
            vec![0.0],
            vec![0.0],
            vec![0.1],
            vec![0.2],
            vec![10.0],
        ]);
        let y = vec![0, 0, 0, 0, 0, 0, 1];
        let mut clf = GaussianNaiveBayes::default_config();
        clf.fit(&x, &y);
        // A point equidistant in likelihood should lean towards the majority class,
        // and an obviously class-1 point should still be classed 1.
        let preds = clf.predict(&Matrix::from_rows(&[vec![0.05], vec![10.0]]));
        assert_eq!(preds[0], 0);
        assert_eq!(preds[1], 1);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let clf = GaussianNaiveBayes::default_config();
        let _ = clf.predict_proba(&Matrix::zeros(1, 2));
    }
}
