//! The one scoped fan-out used everywhere a fit shards work across threads.
//!
//! Shard fits, per-shard transforms, cross-validation folds and the serve
//! registry's per-kind fits all need the same thing: run `f` over each item on
//! its own scoped thread and collect the results *in item order*. [`scoped_map`]
//! is that pattern, written once — callers decide how many items (and therefore
//! threads) to create, typically from a
//! [`ThreadBudget`](crate::cv::ThreadBudget).

/// Run `f` over each item on its own scoped thread, returning results in item
/// order (spawn handles are joined in spawn order).
///
/// Spawns one thread per item unconditionally; callers with a cheap
/// single-item case should branch before calling. Panics propagate: a
/// panicking worker fails the whole map.
pub fn scoped_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let f = &f;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = items
            .iter()
            .map(|item| scope.spawn(move |_| f(item)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scoped_map worker thread panicked"))
            .collect()
    })
    .expect("scoped_map thread scope failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..17).collect();
        let doubled = scoped_map(&items, |&i| i * 2);
        assert_eq!(doubled, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_an_empty_output() {
        let none: Vec<u8> = Vec::new();
        assert!(scoped_map(&none, |&b| b).is_empty());
    }

    #[test]
    fn workers_may_borrow_from_the_caller() {
        let corpus = ["a b", "c", "d e f"];
        let counts = scoped_map(&corpus, |doc| doc.split_whitespace().count());
        assert_eq!(counts, vec![2, 1, 3]);
    }
}
