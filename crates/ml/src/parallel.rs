//! The one scoped fan-out used everywhere a fit shards work across threads.
//!
//! Shard fits, per-shard transforms, cross-validation folds and the serve
//! registry's per-kind fits all need the same thing: run `f` over each item on
//! its own scoped thread and collect the results *in item order*. [`scoped_map`]
//! is that pattern, written once — callers decide how many items (and therefore
//! threads) to create, typically from a
//! [`ThreadBudget`](crate::cv::ThreadBudget).
//!
//! [`tree_reduce`] is the matching reduce: pairwise merge rounds over an
//! ordered sequence, each round merging adjacent pairs in parallel, so the
//! reduce step of a map-reduce fit costs `O(log n)` sequential rounds instead
//! of a single-threaded `O(n)` fold. For an associative merge it is
//! result-identical to the left fold.

/// Run `f` over each item on its own scoped thread, returning results in item
/// order (spawn handles are joined in spawn order).
///
/// Spawns one thread per item unconditionally; callers with a cheap
/// single-item case should branch before calling. Panics propagate: a
/// panicking worker fails the whole map.
pub fn scoped_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let f = &f;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = items
            .iter()
            .map(|item| scope.spawn(move |_| f(item)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scoped_map worker thread panicked"))
            .collect()
    })
    .expect("scoped_map thread scope failed")
}

/// Reduce `items` to one value by rounds of adjacent-pair merges, running the
/// merges of each round on scoped threads when a round has more than one pair
/// (a round with a single pair merges inline — a thread would cost more than
/// it buys). An odd item at the end of a round passes through unmerged.
///
/// Order is preserved: every merge is `merge(left, right)` of *adjacent*
/// survivors, so for an associative `merge` the result equals the sequential
/// left fold exactly — which is why the sharded vocabulary fit can swap its
/// single-threaded reduce for this without changing a bit of output (integer
/// frequency sums are associative; the property tests in
/// `crates/ml/tests/property.rs` pin bit-identity at shard counts up to 16).
///
/// Returns `None` for an empty input.
pub fn tree_reduce<T, F>(items: Vec<T>, merge: F) -> Option<T>
where
    T: Send,
    F: Fn(T, T) -> T + Sync,
{
    let mut layer = items;
    while layer.len() > 1 {
        let mut next: Vec<T> = Vec::with_capacity(layer.len().div_ceil(2));
        let mut pairs: Vec<(T, T)> = Vec::with_capacity(layer.len() / 2);
        let mut tail: Option<T> = None;
        let mut iter = layer.into_iter();
        while let Some(left) = iter.next() {
            match iter.next() {
                Some(right) => pairs.push((left, right)),
                None => tail = Some(left),
            }
        }
        if pairs.len() == 1 {
            let (left, right) = pairs.pop().expect("one pair");
            next.push(merge(left, right));
        } else {
            let merge = &merge;
            let merged = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = pairs
                    .into_iter()
                    .map(|(left, right)| scope.spawn(move |_| merge(left, right)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("tree_reduce worker thread panicked"))
                    .collect::<Vec<T>>()
            })
            .expect("tree_reduce thread scope failed");
            next.extend(merged);
        }
        next.extend(tail);
        layer = next;
    }
    layer.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..17).collect();
        let doubled = scoped_map(&items, |&i| i * 2);
        assert_eq!(doubled, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_an_empty_output() {
        let none: Vec<u8> = Vec::new();
        assert!(scoped_map(&none, |&b| b).is_empty());
    }

    #[test]
    fn workers_may_borrow_from_the_caller() {
        let corpus = ["a b", "c", "d e f"];
        let counts = scoped_map(&corpus, |doc| doc.split_whitespace().count());
        assert_eq!(counts, vec![2, 1, 3]);
    }

    #[test]
    fn tree_reduce_handles_empty_single_and_many() {
        assert_eq!(tree_reduce(Vec::<u64>::new(), |a, b| a + b), None);
        assert_eq!(tree_reduce(vec![7u64], |a, b| a + b), Some(7));
        for n in 2usize..=17 {
            let items: Vec<u64> = (1..=n as u64).collect();
            let expected: u64 = items.iter().sum();
            assert_eq!(tree_reduce(items, |a, b| a + b), Some(expected), "n = {n}");
        }
    }

    /// String concatenation is associative but NOT commutative: equality with
    /// the sequential left fold proves the pairwise rounds preserve item
    /// order, not just the multiset of items.
    #[test]
    fn tree_reduce_preserves_order_for_noncommutative_merges() {
        for n in 1usize..=16 {
            let items: Vec<String> = (0..n).map(|i| format!("[{i}]")).collect();
            let expected = items.concat();
            let got = tree_reduce(items, |a, b| a + &b).expect("non-empty");
            assert_eq!(got, expected, "n = {n}");
        }
    }
}
