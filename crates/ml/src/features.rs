//! Text feature extraction: raw-count and TF-IDF vectorisers.
//!
//! The paper "converts text data into numerical representation using Term
//! Frequency-Inverse Document Frequency (TF-IDF) and uses frequency-based features
//! with classifiers from the Scikit-Learn library". Both vectorisers here follow the
//! scikit-learn semantics so the baselines are comparable: smoothed IDF
//! (`ln((1+N)/(1+df)) + 1`), optional sublinear TF, and L2 row normalisation for
//! TF-IDF.
//!
//! ## The sharded map-reduce fit
//!
//! Fitting is a map-reduce over document shards, and there is exactly one fit
//! code path: [`CountVectorizer::fit_parallel`] chunks the corpus into
//! `n_threads` contiguous shards, runs the analyzer and an independent
//! [`VocabularyBuilder`] per shard on scoped threads (the map), tree-reduces
//! the builders in shard order (pairwise merge rounds via
//! [`tree_reduce`](crate::parallel::tree_reduce), integer-exact, `O(log)`
//! sequential rounds), and freezes the
//! vocabulary once. The sequential [`fit`](CountVectorizer::fit) is simply
//! `n_threads = 1`. [`TfidfVectorizer::fit_parallel`] layers a single IDF
//! computation on top, and
//! [`fit_transform_sparse_parallel`](TfidfVectorizer::fit_transform_sparse_parallel)
//! retains each shard's token streams so fit + transform costs **one**
//! tokenisation pass: every shard re-emits its documents as a [`CsrBuilder`]
//! block and the blocks are stacked back in document order.
//!
//! Shard count never changes results: vocabulary order, IDF vectors and
//! transformed matrices are bit-identical for every `n_threads` (a property
//! test in `crates/ml/tests/property.rs` pins this), because frequency merges
//! are integer sums, term ordering is a total order, and every transformed row
//! depends only on its own document.
//!
//! ## The interned fit path
//!
//! Inside a shard the analyzer does not build `Vec<String>` per document.
//! Each shard owns a per-fit [`Interner`]: tokens are cut as byte spans
//! ([`token_spans`]), lowercased through a borrow when the slice is already
//! ASCII-lowercase, and mapped to dense `u32` symbols, so the fit allocates
//! one `String` per *distinct* term instead of one per token occurrence.
//! Stems are memoised per distinct word symbol and term/document frequencies
//! accumulate in plain `Vec<u64>` slots indexed by symbol ([`SymCounts`]),
//! folding into a [`VocabularyBuilder`] only once per shard. The counts are
//! the same integers the string path produced, so vocabularies, IDF vectors
//! and matrices stay bit-identical (pinned by a property test against a
//! reference analyzer built from the public text API). The string-based
//! [`analyze`] remains the transform/inference path, where documents arrive
//! one at a time and an arena would never amortise.

use crate::parallel::{scoped_map, tree_reduce};
use holistix_linalg::{CsrBuilder, CsrMatrix, Matrix};
use holistix_text::{
    ngrams, stem, token_spans, Interner, StopwordFilter, Sym, TokenKind, Vocabulary,
    VocabularyBuilder,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Analyzer and vocabulary options shared by both vectorisers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VectorizerOptions {
    /// Lower-case and keep word tokens only (numbers and punctuation dropped).
    pub lowercase: bool,
    /// Remove English stop-words.
    pub remove_stopwords: bool,
    /// Apply the Porter-style stemmer to each token.
    pub stem: bool,
    /// Include word n-grams up to this order (1 = unigrams only).
    pub ngram_max: usize,
    /// Drop terms occurring in fewer than this many documents. `usize` because it
    /// is compared against document counts.
    pub min_document_frequency: usize,
    /// Cap the vocabulary at the most frequent `max_features` terms (`None` = no cap).
    pub max_features: Option<usize>,
    /// Use `1 + ln(tf)` instead of raw term frequency (TF-IDF only).
    pub sublinear_tf: bool,
    /// L2-normalise each document vector (TF-IDF only).
    pub l2_normalize: bool,
}

impl Default for VectorizerOptions {
    fn default() -> Self {
        Self {
            lowercase: true,
            remove_stopwords: true,
            stem: false,
            ngram_max: 1,
            min_document_frequency: 1,
            max_features: None,
            sublinear_tf: false,
            l2_normalize: true,
        }
    }
}

impl VectorizerOptions {
    /// The configuration used for the paper's baselines: unigram TF-IDF with stop-word
    /// removal and L2 normalisation.
    pub fn paper_default() -> Self {
        Self::default()
    }
}

/// Shared analyzer: text → list of (possibly n-gram) terms. The stop-word filter
/// is taken by reference so corpus-level callers build its hash set once, not
/// once per document — formerly the hottest allocation in the transform path.
fn analyze(text: &str, options: &VectorizerOptions, stopwords: &StopwordFilter) -> Vec<String> {
    let mut words: Vec<String> = holistix_text::tokenize(text)
        .into_iter()
        .filter(|t| t.kind == holistix_text::TokenKind::Word)
        .map(|t| if options.lowercase { t.lower() } else { t.text })
        .filter(|w| !options.remove_stopwords || !stopwords.is_stopword(w))
        .collect();
    if options.stem {
        words = words.iter().map(|w| stem(w)).collect();
    }
    if options.ngram_max <= 1 {
        return words;
    }
    let mut terms = words.clone();
    for n in 2..=options.ngram_max {
        terms.extend(ngrams(&words, n).into_iter().map(|g| g.joined()));
    }
    terms
}

/// The interned analyzer: the symbol-producing twin of [`analyze`], scoped to
/// one fit shard. Holds the term arena, the per-distinct-word stem memo, and
/// reusable scratch buffers; emits the exact term sequence [`analyze`] would,
/// as dense [`Sym`]s.
struct InternedAnalyzer<'a> {
    options: &'a VectorizerOptions,
    stopwords: &'static StopwordFilter,
    interner: Interner,
    /// word symbol → stemmed symbol, so each distinct word is stemmed once.
    stem_memo: HashMap<Sym, Sym>,
    /// Unigram scratch, reused across documents.
    words: Vec<Sym>,
    /// N-gram join scratch, reused across n-grams.
    gram: String,
}

impl<'a> InternedAnalyzer<'a> {
    fn new(options: &'a VectorizerOptions) -> Self {
        Self {
            options,
            stopwords: StopwordFilter::english_shared(),
            interner: Interner::new(),
            stem_memo: HashMap::new(),
            words: Vec::new(),
            gram: String::new(),
        }
    }

    /// Append the analyzed term symbols for `text` to `out` — the same terms,
    /// in the same order, as `analyze(text, options, stopwords)`.
    fn analyze_into(&mut self, text: &str, out: &mut Vec<Sym>) {
        self.words.clear();
        for (start, end, kind) in token_spans(text) {
            if kind != TokenKind::Word {
                continue;
            }
            let raw = &text[start..end];
            let lowered;
            let token: &str = if self.options.lowercase
                && !raw.bytes().all(|b| b.is_ascii() && !b.is_ascii_uppercase())
            {
                // Slow path: uppercase or non-ASCII — go through the same
                // `str::to_lowercase` the string analyzer uses (it is context
                // sensitive, e.g. Greek final sigma, so no per-char shortcut).
                lowered = raw.to_lowercase();
                &lowered
            } else {
                raw
            };
            if self.options.remove_stopwords && self.stopwords.is_stopword(token) {
                continue;
            }
            self.words.push(self.interner.intern(token));
        }
        if self.options.stem {
            for sym in &mut self.words {
                *sym = match self.stem_memo.get(sym) {
                    Some(&stemmed) => stemmed,
                    None => {
                        let stemmed_term = stem(self.interner.resolve(*sym));
                        let stemmed = self.interner.intern(&stemmed_term);
                        self.stem_memo.insert(*sym, stemmed);
                        stemmed
                    }
                };
            }
        }
        out.extend_from_slice(&self.words);
        for n in 2..=self.options.ngram_max {
            if self.words.len() < n {
                break;
            }
            for window in self.words.windows(n) {
                self.gram.clear();
                for (i, &sym) in window.iter().enumerate() {
                    if i > 0 {
                        self.gram.push(' ');
                    }
                    self.gram.push_str(self.interner.resolve(sym));
                }
                out.push(self.interner.intern(&self.gram));
            }
        }
    }
}

/// Dense per-symbol frequency accumulators for one shard: `Vec` slots indexed
/// by [`Sym`] instead of `HashMap<String, u64>` probes. Document frequency
/// dedup uses a per-document stamp, so no per-document set is allocated.
#[derive(Default)]
struct SymCounts {
    term: Vec<u64>,
    doc: Vec<u64>,
    /// Stamp of the last document each symbol was seen in.
    seen_in: Vec<u32>,
    stamp: u32,
    n_docs: u64,
}

impl SymCounts {
    fn add_document(&mut self, terms: &[Sym], n_syms: usize) {
        self.n_docs += 1;
        self.stamp += 1;
        if self.term.len() < n_syms {
            self.term.resize(n_syms, 0);
            self.doc.resize(n_syms, 0);
            self.seen_in.resize(n_syms, 0);
        }
        for &sym in terms {
            let i = sym as usize;
            self.term[i] += 1;
            if self.seen_in[i] != self.stamp {
                self.seen_in[i] = self.stamp;
                self.doc[i] += 1;
            }
        }
    }

    /// Fold the totals into a [`VocabularyBuilder`] — exactly what
    /// `add_document`-ing every document's string terms would have produced.
    /// Symbols that never occurred as terms (stem-memo keys interned only as
    /// lookups) have zero counts and are skipped.
    fn into_builder(self, interner: &Interner) -> VocabularyBuilder {
        let mut builder = VocabularyBuilder::new();
        builder.record_documents(self.n_docs);
        for (i, (&term_count, &doc_count)) in self.term.iter().zip(&self.doc).enumerate() {
            if term_count > 0 {
                builder.record_term(interner.resolve(i as Sym), term_count, doc_count);
            }
        }
        builder
    }
}

/// One shard's map output: vocabulary counts, plus (when requested) the
/// per-document interned token streams and their arena so a following
/// transform never tokenises again.
struct ShardFit {
    builder: VocabularyBuilder,
    interner: Interner,
    tokens: Vec<Vec<Sym>>,
}

/// A shard's retained token streams paired with the arena they intern into.
type ShardTokens = (Interner, Vec<Vec<Sym>>);

/// Analyze one contiguous document shard into a [`ShardFit`] through the
/// interned path (see the module docs).
fn analyze_shard<S: AsRef<str>>(
    documents: &[S],
    options: &VectorizerOptions,
    keep_tokens: bool,
) -> ShardFit {
    let mut analyzer = InternedAnalyzer::new(options);
    let mut counts = SymCounts::default();
    let mut tokens = Vec::with_capacity(if keep_tokens { documents.len() } else { 0 });
    let mut scratch: Vec<Sym> = Vec::new();
    for doc in documents {
        scratch.clear();
        analyzer.analyze_into(doc.as_ref(), &mut scratch);
        counts.add_document(&scratch, analyzer.interner.len());
        if keep_tokens {
            tokens.push(scratch.clone());
        }
    }
    ShardFit {
        builder: counts.into_builder(&analyzer.interner),
        interner: analyzer.interner,
        tokens,
    }
}

/// The map-reduce fit shared by both vectorisers: chunk `documents` into at
/// most `n_threads` contiguous shards, analyze + count each shard (on scoped
/// threads when more than one), and tree-reduce the builders in shard order
/// ([`tree_reduce`]: pairwise merge rounds, each round's merges in parallel,
/// so the reduce is `O(log shards)` sequential rounds instead of a
/// single-threaded fold — the step that dominated at ≥16 shards).
///
/// Returns the merged builder and the per-shard interned token streams with
/// their arenas (empty streams unless `keep_tokens`). One shard — the
/// sequential fit — runs inline on the calling thread; results are
/// bit-identical for every shard count because frequency merging is an
/// associative integer sum (so fold and tree agree exactly) and vocabulary
/// freezing orders terms totally.
fn fit_shards<S: AsRef<str> + Sync>(
    documents: &[S],
    options: &VectorizerOptions,
    n_threads: usize,
    keep_tokens: bool,
) -> (VocabularyBuilder, Vec<ShardTokens>) {
    let n_shards = n_threads.clamp(1, documents.len().max(1));
    let shards: Vec<ShardFit> = if n_shards <= 1 {
        vec![analyze_shard(documents, options, keep_tokens)]
    } else {
        let chunk_size = documents.len().div_ceil(n_shards);
        let chunks: Vec<&[S]> = documents.chunks(chunk_size).collect();
        scoped_map(&chunks, |chunk| analyze_shard(chunk, options, keep_tokens))
    };
    let mut builders = Vec::with_capacity(shards.len());
    let mut token_shards = Vec::with_capacity(shards.len());
    for shard in shards {
        builders.push(shard.builder);
        token_shards.push((shard.interner, shard.tokens));
    }
    let merged = tree_reduce(builders, |mut left, right| {
        left.merge(right);
        left
    })
    .unwrap_or_default();
    (merged, token_shards)
}

/// Count one shard's retained interned token streams into a CSR block. The
/// shard's symbols map to vocabulary columns through one dense lookup table
/// (symbol → `Option<column>`), built with a single hash probe per *distinct*
/// shard term. Entries are pushed in token order with weight `1.0`, exactly
/// as [`CountVectorizer::transform_sparse`] does, so the block is
/// bit-identical to the corresponding rows of a standalone transform.
fn count_block(vocabulary: &Vocabulary, interner: &Interner, documents: &[Vec<Sym>]) -> CsrMatrix {
    let columns: Vec<Option<usize>> = interner
        .terms()
        .iter()
        .map(|term| vocabulary.id(term))
        .collect();
    let mut builder = CsrBuilder::new(vocabulary.len());
    let mut entries: Vec<(usize, f64)> = Vec::new();
    for tokens in documents {
        entries.clear();
        for &sym in tokens {
            if let Some(col) = columns[sym as usize] {
                entries.push((col, 1.0));
            }
        }
        builder.push_row(&mut entries);
    }
    builder.finish()
}

/// Raw term-count vectoriser (`CountVectorizer` analogue).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountVectorizer {
    options: VectorizerOptions,
    vocabulary: Vocabulary,
}

impl CountVectorizer {
    /// Fit a vectoriser on a document collection (the single-shard case of
    /// [`fit_parallel`](Self::fit_parallel) — there is one fit code path).
    pub fn fit<S: AsRef<str> + Sync>(documents: &[S], options: VectorizerOptions) -> Self {
        Self::fit_parallel(documents, options, 1)
    }

    /// Fit with vocabulary counting sharded across `n_threads` scoped threads.
    /// The result is bit-identical to the sequential fit for every shard
    /// count; `n_threads = 1` (or a single-document corpus) runs inline.
    pub fn fit_parallel<S: AsRef<str> + Sync>(
        documents: &[S],
        options: VectorizerOptions,
        n_threads: usize,
    ) -> Self {
        let (builder, _) = fit_shards(documents, &options, n_threads, false);
        let vocabulary =
            builder.build_with_min_df(options.min_document_frequency.max(1), options.max_features);
        Self {
            options,
            vocabulary,
        }
    }

    /// Fit and sparse-transform in one tokenisation pass: each shard retains
    /// its token streams while counting, then re-emits them as a CSR block
    /// once the merged vocabulary exists; blocks are stacked back in document
    /// order. Equivalent to `(Self::fit_parallel(..), fitted.transform_sparse(..))`
    /// bit for bit, at half the analyzer cost.
    pub fn fit_transform_sparse_parallel<S: AsRef<str> + Sync>(
        documents: &[S],
        options: VectorizerOptions,
        n_threads: usize,
    ) -> (Self, CsrMatrix) {
        let (builder, token_shards) = fit_shards(documents, &options, n_threads, true);
        let vocabulary =
            builder.build_with_min_df(options.min_document_frequency.max(1), options.max_features);
        let mut blocks: Vec<CsrMatrix> = if token_shards.len() <= 1 {
            token_shards
                .iter()
                .map(|(interner, tokens)| count_block(&vocabulary, interner, tokens))
                .collect()
        } else {
            scoped_map(&token_shards, |(interner, tokens)| {
                count_block(&vocabulary, interner, tokens)
            })
        };
        // A lone block IS the matrix — vstack would copy the whole corpus's
        // CSR arrays for nothing on the (default) sequential path.
        let matrix = if blocks.len() == 1 {
            blocks.pop().expect("one block")
        } else {
            CsrMatrix::vstack(&blocks)
        };
        (
            Self {
                options,
                vocabulary,
            },
            matrix,
        )
    }

    /// The fitted vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Number of features (vocabulary size).
    pub fn n_features(&self) -> usize {
        self.vocabulary.len()
    }

    /// The analyzer output for one document (useful for explanations).
    pub fn analyze_document(&self, text: &str) -> Vec<String> {
        analyze(text, &self.options, StopwordFilter::english_shared())
    }

    /// Transform documents into a dense `documents × features` count matrix.
    /// Out-of-vocabulary terms are ignored.
    pub fn transform<S: AsRef<str>>(&self, documents: &[S]) -> Matrix {
        let mut out = Matrix::zeros(documents.len(), self.vocabulary.len());
        let stopwords = StopwordFilter::english_shared();
        for (row, doc) in documents.iter().enumerate() {
            for term in analyze(doc.as_ref(), &self.options, stopwords) {
                if let Some(col) = self.vocabulary.id(&term) {
                    out[(row, col)] += 1.0;
                }
            }
        }
        out
    }

    /// Transform documents straight into a CSR count matrix, never allocating the
    /// dense `documents × vocabulary` grid. `transform_sparse(d).to_dense()` equals
    /// `transform(d)` exactly (a property test asserts bitwise equality).
    pub fn transform_sparse<S: AsRef<str>>(&self, documents: &[S]) -> CsrMatrix {
        let mut builder = CsrBuilder::new(self.vocabulary.len());
        let mut entries: Vec<(usize, f64)> = Vec::new();
        let stopwords = StopwordFilter::english_shared();
        for doc in documents {
            entries.clear();
            for term in analyze(doc.as_ref(), &self.options, stopwords) {
                if let Some(col) = self.vocabulary.id(&term) {
                    entries.push((col, 1.0));
                }
            }
            builder.push_row(&mut entries);
        }
        builder.finish()
    }
}

/// TF-IDF vectoriser (`TfidfVectorizer` analogue with scikit-learn smoothing).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfidfVectorizer {
    counts: CountVectorizer,
    idf: Vec<f64>,
}

impl TfidfVectorizer {
    /// Fit on a document collection (the single-shard case of
    /// [`fit_parallel`](Self::fit_parallel)).
    pub fn fit<S: AsRef<str> + Sync>(documents: &[S], options: VectorizerOptions) -> Self {
        Self::fit_parallel(documents, options, 1)
    }

    /// Fit with vocabulary counting sharded across `n_threads` threads; the
    /// IDF vector is computed once from the merged document frequencies, so
    /// it is bit-identical for every shard count.
    pub fn fit_parallel<S: AsRef<str> + Sync>(
        documents: &[S],
        options: VectorizerOptions,
        n_threads: usize,
    ) -> Self {
        Self::from_counts(CountVectorizer::fit_parallel(documents, options, n_threads))
    }

    /// Finish a TF-IDF vectoriser around fitted counts: one IDF computation,
    /// after whatever merge produced the vocabulary.
    fn from_counts(counts: CountVectorizer) -> Self {
        let idf = counts
            .vocabulary()
            .terms()
            .iter()
            .map(|t| counts.vocabulary().idf(t))
            .collect();
        Self { counts, idf }
    }

    /// Fit with the paper-default options.
    pub fn fit_default<S: AsRef<str> + Sync>(documents: &[S]) -> Self {
        Self::fit(documents, VectorizerOptions::paper_default())
    }

    /// The fitted vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        self.counts.vocabulary()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.counts.n_features()
    }

    /// The IDF weight of each vocabulary term, in id order.
    pub fn idf(&self) -> &[f64] {
        &self.idf
    }

    /// The analyzer output for one document.
    pub fn analyze_document(&self, text: &str) -> Vec<String> {
        self.counts.analyze_document(text)
    }

    /// Transform documents into a dense TF-IDF matrix.
    pub fn transform<S: AsRef<str>>(&self, documents: &[S]) -> Matrix {
        let mut m = self.counts.transform(documents);
        let options = &self.counts.options;
        for r in 0..m.rows() {
            let row = m.row_mut(r);
            for (c, value) in row.iter_mut().enumerate() {
                if *value > 0.0 {
                    let tf = if options.sublinear_tf {
                        1.0 + value.ln()
                    } else {
                        *value
                    };
                    *value = tf * self.idf[c];
                }
            }
            if options.l2_normalize {
                let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
                if norm > 0.0 {
                    for v in row.iter_mut() {
                        *v /= norm;
                    }
                }
            }
        }
        m
    }

    /// Transform documents straight into a CSR TF-IDF matrix, never allocating the
    /// dense grid. Entry-wise identical to [`transform`](Self::transform): the TF
    /// and IDF factors are per-entry, and the L2 norm accumulates over the same
    /// column order (zero terms are exact identities), so
    /// `transform_sparse(d).to_dense()` equals `transform(d)` bitwise.
    pub fn transform_sparse<S: AsRef<str>>(&self, documents: &[S]) -> CsrMatrix {
        let mut m = self.counts.transform_sparse(documents);
        self.apply_tfidf(&mut m);
        m
    }

    /// Scale a CSR count matrix into TF-IDF in place: per-entry TF and IDF
    /// factors, then the optional per-row L2 norm. Row-local, so it commutes
    /// with any row partition — the sharded fit applies it once to the stacked
    /// matrix with the same bits a per-shard application would produce.
    fn apply_tfidf(&self, m: &mut CsrMatrix) {
        let options = &self.counts.options;
        for r in 0..m.rows() {
            let (cols, values) = m.row_mut(r);
            for (&c, value) in cols.iter().zip(values.iter_mut()) {
                let tf = if options.sublinear_tf {
                    1.0 + value.ln()
                } else {
                    *value
                };
                *value = tf * self.idf[c];
            }
            if options.l2_normalize {
                let norm: f64 = values.iter().map(|v| v * v).sum::<f64>().sqrt();
                if norm > 0.0 {
                    for v in values.iter_mut() {
                        *v /= norm;
                    }
                }
            }
        }
    }

    /// Fit and transform in one step.
    pub fn fit_transform<S: AsRef<str> + Sync>(
        documents: &[S],
        options: VectorizerOptions,
    ) -> (Self, Matrix) {
        let v = Self::fit(documents, options);
        let m = v.transform(documents);
        (v, m)
    }

    /// Fit and sparse-transform in one step (single-shard case of
    /// [`fit_transform_sparse_parallel`](Self::fit_transform_sparse_parallel)).
    pub fn fit_transform_sparse<S: AsRef<str> + Sync>(
        documents: &[S],
        options: VectorizerOptions,
    ) -> (Self, CsrMatrix) {
        Self::fit_transform_sparse_parallel(documents, options, 1)
    }

    /// Sharded fit + sparse transform in one tokenisation pass: the count
    /// layer retains per-shard token streams and stacks per-shard CSR blocks
    /// in document order; TF-IDF scaling then runs once over the stacked
    /// matrix. Output is bit-identical to `fit` followed by `transform_sparse`
    /// for every shard count.
    pub fn fit_transform_sparse_parallel<S: AsRef<str> + Sync>(
        documents: &[S],
        options: VectorizerOptions,
        n_threads: usize,
    ) -> (Self, CsrMatrix) {
        let (counts, mut matrix) =
            CountVectorizer::fit_transform_sparse_parallel(documents, options, n_threads);
        let v = Self::from_counts(counts);
        v.apply_tfidf(&mut matrix);
        (v, matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<&'static str> {
        vec![
            "I feel exhausted and I cannot sleep",
            "my job drains me and the money worries never stop",
            "I feel so alone without my friends",
            "sleep issues and anxiety every night",
        ]
    }

    #[test]
    fn count_vectorizer_counts_terms() {
        let v = CountVectorizer::fit(&docs(), VectorizerOptions::default());
        let m = v.transform(&docs());
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), v.n_features());
        let sleep_col = v.vocabulary().id("sleep").unwrap();
        assert_eq!(m[(0, sleep_col)], 1.0);
        assert_eq!(m[(3, sleep_col)], 1.0);
        assert_eq!(m[(1, sleep_col)], 0.0);
    }

    #[test]
    fn stopwords_are_removed_by_default() {
        let v = CountVectorizer::fit(&docs(), VectorizerOptions::default());
        assert!(v.vocabulary().id("and").is_none());
        assert!(v.vocabulary().id("the").is_none());
    }

    #[test]
    fn tfidf_rows_are_unit_norm() {
        let (_, m) = TfidfVectorizer::fit_transform(&docs(), VectorizerOptions::default());
        for r in 0..m.rows() {
            let norm: f64 = m.row(r).iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "row {r} norm {norm}");
        }
    }

    #[test]
    fn tfidf_weights_rare_terms_higher() {
        let opts = VectorizerOptions {
            l2_normalize: false,
            ..VectorizerOptions::default()
        };
        let (v, m) = TfidfVectorizer::fit_transform(&docs(), opts);
        // "sleep" appears in 2 docs, "job" in 1: within doc 1, job should outweigh a
        // twice-as-common word given equal term frequency.
        let job = v.vocabulary().id("job").unwrap();
        let sleep = v.vocabulary().id("sleep").unwrap();
        assert!(v.idf()[job] > v.idf()[sleep]);
        assert!(m[(1, job)] > 0.0);
    }

    #[test]
    fn oov_terms_are_ignored_at_transform_time() {
        let v = TfidfVectorizer::fit_default(&docs());
        let m = v.transform(&["completely novel vocabulary zap zorp"]);
        assert_eq!(m.rows(), 1);
        assert_eq!(m.row(0).iter().copied().sum::<f64>(), 0.0);
    }

    #[test]
    fn empty_document_is_zero_row() {
        let v = TfidfVectorizer::fit_default(&docs());
        let m = v.transform(&[""]);
        assert!(m.row(0).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn min_df_prunes_rare_terms() {
        let opts = VectorizerOptions {
            min_document_frequency: 2,
            ..VectorizerOptions::default()
        };
        let v = CountVectorizer::fit(&docs(), opts);
        assert!(
            v.vocabulary().id("job").is_none(),
            "df-1 term should be pruned"
        );
        assert!(v.vocabulary().id("sleep").is_some() || v.vocabulary().id("feel").is_some());
    }

    #[test]
    fn max_features_caps_vocabulary() {
        let opts = VectorizerOptions {
            max_features: Some(5),
            ..VectorizerOptions::default()
        };
        let v = CountVectorizer::fit(&docs(), opts);
        assert_eq!(v.n_features(), 5);
    }

    #[test]
    fn bigram_options_add_ngrams() {
        let opts = VectorizerOptions {
            ngram_max: 2,
            remove_stopwords: false,
            ..VectorizerOptions::default()
        };
        let v = CountVectorizer::fit(&docs(), opts);
        assert!(
            v.vocabulary().terms().iter().any(|t| t.contains(' ')),
            "expected bigram terms"
        );
    }

    #[test]
    fn stemming_conflates_variants() {
        let opts = VectorizerOptions {
            stem: true,
            ..VectorizerOptions::default()
        };
        let v = CountVectorizer::fit(&["sleeping sleeps slept", "sleep"], opts);
        // "sleeping"/"sleeps"/"sleep" all stem to "sleep".
        let m = v.transform(&["sleeping", "sleep"]);
        let col = v.vocabulary().id("sleep").unwrap();
        assert!(m[(0, col)] > 0.0);
        assert!(m[(1, col)] > 0.0);
    }

    #[test]
    fn sparse_transform_matches_dense_for_both_vectorisers() {
        let count = CountVectorizer::fit(&docs(), VectorizerOptions::default());
        assert_eq!(
            count.transform_sparse(&docs()).to_dense(),
            count.transform(&docs())
        );
        let tfidf = TfidfVectorizer::fit_default(&docs());
        let sparse = tfidf.transform_sparse(&docs());
        assert_eq!(sparse.to_dense(), tfidf.transform(&docs()));
        // The whole point: a realistic row stores only its own terms.
        assert!(sparse.density() < 0.5, "density {}", sparse.density());
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_sequential() {
        // More documents than shards, uneven splits included.
        let docs: Vec<String> = (0..23)
            .map(|i| {
                format!(
                    "doc {i} feel alone tired sleep anxiety word{} word{}",
                    i % 7,
                    i % 3
                )
            })
            .collect();
        let sequential = TfidfVectorizer::fit(&docs, VectorizerOptions::default());
        let expected = sequential.transform_sparse(&docs);
        for n_threads in [1, 2, 3, 4, 8, 64] {
            let parallel =
                TfidfVectorizer::fit_parallel(&docs, VectorizerOptions::default(), n_threads);
            assert_eq!(
                parallel.vocabulary().terms(),
                sequential.vocabulary().terms(),
                "{n_threads} shards changed the vocabulary"
            );
            assert_eq!(parallel.idf(), sequential.idf());
            assert_eq!(parallel.transform_sparse(&docs), expected);
        }
    }

    #[test]
    fn fit_transform_parallel_matches_fit_then_transform() {
        let docs: Vec<String> = (0..17)
            .map(|i| format!("anxiety sleep work drain {} repeat repeat", i % 5))
            .collect();
        for variant in [
            VectorizerOptions::default(),
            VectorizerOptions {
                sublinear_tf: true,
                min_document_frequency: 2,
                ..VectorizerOptions::default()
            },
        ] {
            let fitted = TfidfVectorizer::fit(&docs, variant.clone());
            let expected = fitted.transform_sparse(&docs);
            for n_threads in [1, 3, 5] {
                let (v, m) = TfidfVectorizer::fit_transform_sparse_parallel(
                    &docs,
                    variant.clone(),
                    n_threads,
                );
                assert_eq!(v.vocabulary().terms(), fitted.vocabulary().terms());
                assert_eq!(m, expected, "{n_threads} shards diverged");
            }
            let (cv, cm) =
                CountVectorizer::fit_transform_sparse_parallel(&docs, variant.clone(), 4);
            assert_eq!(cm, cv.transform_sparse(&docs));
        }
    }

    #[test]
    fn parallel_fit_handles_tiny_and_empty_corpora() {
        let empty: Vec<&str> = Vec::new();
        let v = TfidfVectorizer::fit_parallel(&empty, VectorizerOptions::default(), 4);
        assert_eq!(v.n_features(), 0);
        let (_, m) =
            TfidfVectorizer::fit_transform_sparse_parallel(&empty, VectorizerOptions::default(), 4);
        assert_eq!(m.rows(), 0);

        let one = ["just one document here"];
        let (v, m) =
            TfidfVectorizer::fit_transform_sparse_parallel(&one, VectorizerOptions::default(), 8);
        assert_eq!(m.rows(), 1);
        assert_eq!(m, v.transform_sparse(&one));
    }

    #[test]
    fn sublinear_tf_dampens_repeats() {
        let opts = VectorizerOptions {
            sublinear_tf: true,
            l2_normalize: false,
            ..VectorizerOptions::default()
        };
        let docs = vec!["anxiety anxiety anxiety anxiety", "anxiety calm"];
        let (v, m) = TfidfVectorizer::fit_transform(&docs, opts);
        let col = v.vocabulary().id("anxiety").unwrap();
        // 1 + ln(4) ≈ 2.39 rather than 4.
        assert!(m[(0, col)] < 3.0 * v.idf()[col]);
        assert!(m[(0, col)] > m[(1, col)]);
    }
}
