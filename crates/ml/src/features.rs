//! Text feature extraction: raw-count and TF-IDF vectorisers.
//!
//! The paper "converts text data into numerical representation using Term
//! Frequency-Inverse Document Frequency (TF-IDF) and uses frequency-based features
//! with classifiers from the Scikit-Learn library". Both vectorisers here follow the
//! scikit-learn semantics so the baselines are comparable: smoothed IDF
//! (`ln((1+N)/(1+df)) + 1`), optional sublinear TF, and L2 row normalisation for
//! TF-IDF.

use holistix_linalg::{CsrBuilder, CsrMatrix, Matrix};
use holistix_text::{ngrams, stem, StopwordFilter, Vocabulary, VocabularyBuilder};
use serde::{Deserialize, Serialize};

/// Analyzer and vocabulary options shared by both vectorisers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VectorizerOptions {
    /// Lower-case and keep word tokens only (numbers and punctuation dropped).
    pub lowercase: bool,
    /// Remove English stop-words.
    pub remove_stopwords: bool,
    /// Apply the Porter-style stemmer to each token.
    pub stem: bool,
    /// Include word n-grams up to this order (1 = unigrams only).
    pub ngram_max: usize,
    /// Drop terms occurring in fewer than this many documents. `usize` because it
    /// is compared against document counts.
    pub min_document_frequency: usize,
    /// Cap the vocabulary at the most frequent `max_features` terms (`None` = no cap).
    pub max_features: Option<usize>,
    /// Use `1 + ln(tf)` instead of raw term frequency (TF-IDF only).
    pub sublinear_tf: bool,
    /// L2-normalise each document vector (TF-IDF only).
    pub l2_normalize: bool,
}

impl Default for VectorizerOptions {
    fn default() -> Self {
        Self {
            lowercase: true,
            remove_stopwords: true,
            stem: false,
            ngram_max: 1,
            min_document_frequency: 1,
            max_features: None,
            sublinear_tf: false,
            l2_normalize: true,
        }
    }
}

impl VectorizerOptions {
    /// The configuration used for the paper's baselines: unigram TF-IDF with stop-word
    /// removal and L2 normalisation.
    pub fn paper_default() -> Self {
        Self::default()
    }
}

/// Shared analyzer: text → list of (possibly n-gram) terms. The stop-word filter
/// is taken by reference so corpus-level callers build its hash set once, not
/// once per document — formerly the hottest allocation in the transform path.
fn analyze(text: &str, options: &VectorizerOptions, stopwords: &StopwordFilter) -> Vec<String> {
    let mut words: Vec<String> = holistix_text::tokenize(text)
        .into_iter()
        .filter(|t| t.kind == holistix_text::TokenKind::Word)
        .map(|t| if options.lowercase { t.lower() } else { t.text })
        .filter(|w| !options.remove_stopwords || !stopwords.is_stopword(w))
        .collect();
    if options.stem {
        words = words.iter().map(|w| stem(w)).collect();
    }
    if options.ngram_max <= 1 {
        return words;
    }
    let mut terms = words.clone();
    for n in 2..=options.ngram_max {
        terms.extend(ngrams(&words, n).into_iter().map(|g| g.joined()));
    }
    terms
}

/// Raw term-count vectoriser (`CountVectorizer` analogue).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountVectorizer {
    options: VectorizerOptions,
    vocabulary: Vocabulary,
}

impl CountVectorizer {
    /// Fit a vectoriser on a document collection.
    pub fn fit<S: AsRef<str>>(documents: &[S], options: VectorizerOptions) -> Self {
        let mut builder = VocabularyBuilder::new();
        let stopwords = StopwordFilter::english_shared();
        for doc in documents {
            let terms = analyze(doc.as_ref(), &options, stopwords);
            builder.add_document(&terms);
        }
        let vocabulary =
            builder.build_with_min_df(options.min_document_frequency.max(1), options.max_features);
        Self {
            options,
            vocabulary,
        }
    }

    /// The fitted vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Number of features (vocabulary size).
    pub fn n_features(&self) -> usize {
        self.vocabulary.len()
    }

    /// The analyzer output for one document (useful for explanations).
    pub fn analyze_document(&self, text: &str) -> Vec<String> {
        analyze(text, &self.options, StopwordFilter::english_shared())
    }

    /// Transform documents into a dense `documents × features` count matrix.
    /// Out-of-vocabulary terms are ignored.
    pub fn transform<S: AsRef<str>>(&self, documents: &[S]) -> Matrix {
        let mut out = Matrix::zeros(documents.len(), self.vocabulary.len());
        let stopwords = StopwordFilter::english_shared();
        for (row, doc) in documents.iter().enumerate() {
            for term in analyze(doc.as_ref(), &self.options, stopwords) {
                if let Some(col) = self.vocabulary.id(&term) {
                    out[(row, col)] += 1.0;
                }
            }
        }
        out
    }

    /// Transform documents straight into a CSR count matrix, never allocating the
    /// dense `documents × vocabulary` grid. `transform_sparse(d).to_dense()` equals
    /// `transform(d)` exactly (a property test asserts bitwise equality).
    pub fn transform_sparse<S: AsRef<str>>(&self, documents: &[S]) -> CsrMatrix {
        let mut builder = CsrBuilder::new(self.vocabulary.len());
        let mut entries: Vec<(usize, f64)> = Vec::new();
        let stopwords = StopwordFilter::english_shared();
        for doc in documents {
            entries.clear();
            for term in analyze(doc.as_ref(), &self.options, stopwords) {
                if let Some(col) = self.vocabulary.id(&term) {
                    entries.push((col, 1.0));
                }
            }
            builder.push_row(&mut entries);
        }
        builder.finish()
    }
}

/// TF-IDF vectoriser (`TfidfVectorizer` analogue with scikit-learn smoothing).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfidfVectorizer {
    counts: CountVectorizer,
    idf: Vec<f64>,
}

impl TfidfVectorizer {
    /// Fit on a document collection.
    pub fn fit<S: AsRef<str>>(documents: &[S], options: VectorizerOptions) -> Self {
        let counts = CountVectorizer::fit(documents, options);
        let idf = counts
            .vocabulary()
            .terms()
            .iter()
            .map(|t| counts.vocabulary().idf(t))
            .collect();
        Self { counts, idf }
    }

    /// Fit with the paper-default options.
    pub fn fit_default<S: AsRef<str>>(documents: &[S]) -> Self {
        Self::fit(documents, VectorizerOptions::paper_default())
    }

    /// The fitted vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        self.counts.vocabulary()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.counts.n_features()
    }

    /// The IDF weight of each vocabulary term, in id order.
    pub fn idf(&self) -> &[f64] {
        &self.idf
    }

    /// The analyzer output for one document.
    pub fn analyze_document(&self, text: &str) -> Vec<String> {
        self.counts.analyze_document(text)
    }

    /// Transform documents into a dense TF-IDF matrix.
    pub fn transform<S: AsRef<str>>(&self, documents: &[S]) -> Matrix {
        let mut m = self.counts.transform(documents);
        let options = &self.counts.options;
        for r in 0..m.rows() {
            let row = m.row_mut(r);
            for (c, value) in row.iter_mut().enumerate() {
                if *value > 0.0 {
                    let tf = if options.sublinear_tf {
                        1.0 + value.ln()
                    } else {
                        *value
                    };
                    *value = tf * self.idf[c];
                }
            }
            if options.l2_normalize {
                let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
                if norm > 0.0 {
                    for v in row.iter_mut() {
                        *v /= norm;
                    }
                }
            }
        }
        m
    }

    /// Transform documents straight into a CSR TF-IDF matrix, never allocating the
    /// dense grid. Entry-wise identical to [`transform`](Self::transform): the TF
    /// and IDF factors are per-entry, and the L2 norm accumulates over the same
    /// column order (zero terms are exact identities), so
    /// `transform_sparse(d).to_dense()` equals `transform(d)` bitwise.
    pub fn transform_sparse<S: AsRef<str>>(&self, documents: &[S]) -> CsrMatrix {
        let mut m = self.counts.transform_sparse(documents);
        let options = &self.counts.options;
        for r in 0..m.rows() {
            let (cols, values) = m.row_mut(r);
            for (&c, value) in cols.iter().zip(values.iter_mut()) {
                let tf = if options.sublinear_tf {
                    1.0 + value.ln()
                } else {
                    *value
                };
                *value = tf * self.idf[c];
            }
            if options.l2_normalize {
                let norm: f64 = values.iter().map(|v| v * v).sum::<f64>().sqrt();
                if norm > 0.0 {
                    for v in values.iter_mut() {
                        *v /= norm;
                    }
                }
            }
        }
        m
    }

    /// Fit and transform in one step.
    pub fn fit_transform<S: AsRef<str>>(
        documents: &[S],
        options: VectorizerOptions,
    ) -> (Self, Matrix) {
        let v = Self::fit(documents, options);
        let m = v.transform(documents);
        (v, m)
    }

    /// Fit and sparse-transform in one step.
    pub fn fit_transform_sparse<S: AsRef<str>>(
        documents: &[S],
        options: VectorizerOptions,
    ) -> (Self, CsrMatrix) {
        let v = Self::fit(documents, options);
        let m = v.transform_sparse(documents);
        (v, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<&'static str> {
        vec![
            "I feel exhausted and I cannot sleep",
            "my job drains me and the money worries never stop",
            "I feel so alone without my friends",
            "sleep issues and anxiety every night",
        ]
    }

    #[test]
    fn count_vectorizer_counts_terms() {
        let v = CountVectorizer::fit(&docs(), VectorizerOptions::default());
        let m = v.transform(&docs());
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), v.n_features());
        let sleep_col = v.vocabulary().id("sleep").unwrap();
        assert_eq!(m[(0, sleep_col)], 1.0);
        assert_eq!(m[(3, sleep_col)], 1.0);
        assert_eq!(m[(1, sleep_col)], 0.0);
    }

    #[test]
    fn stopwords_are_removed_by_default() {
        let v = CountVectorizer::fit(&docs(), VectorizerOptions::default());
        assert!(v.vocabulary().id("and").is_none());
        assert!(v.vocabulary().id("the").is_none());
    }

    #[test]
    fn tfidf_rows_are_unit_norm() {
        let (_, m) = TfidfVectorizer::fit_transform(&docs(), VectorizerOptions::default());
        for r in 0..m.rows() {
            let norm: f64 = m.row(r).iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "row {r} norm {norm}");
        }
    }

    #[test]
    fn tfidf_weights_rare_terms_higher() {
        let opts = VectorizerOptions {
            l2_normalize: false,
            ..VectorizerOptions::default()
        };
        let (v, m) = TfidfVectorizer::fit_transform(&docs(), opts);
        // "sleep" appears in 2 docs, "job" in 1: within doc 1, job should outweigh a
        // twice-as-common word given equal term frequency.
        let job = v.vocabulary().id("job").unwrap();
        let sleep = v.vocabulary().id("sleep").unwrap();
        assert!(v.idf()[job] > v.idf()[sleep]);
        assert!(m[(1, job)] > 0.0);
    }

    #[test]
    fn oov_terms_are_ignored_at_transform_time() {
        let v = TfidfVectorizer::fit_default(&docs());
        let m = v.transform(&["completely novel vocabulary zap zorp"]);
        assert_eq!(m.rows(), 1);
        assert_eq!(m.row(0).iter().copied().sum::<f64>(), 0.0);
    }

    #[test]
    fn empty_document_is_zero_row() {
        let v = TfidfVectorizer::fit_default(&docs());
        let m = v.transform(&[""]);
        assert!(m.row(0).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn min_df_prunes_rare_terms() {
        let opts = VectorizerOptions {
            min_document_frequency: 2,
            ..VectorizerOptions::default()
        };
        let v = CountVectorizer::fit(&docs(), opts);
        assert!(
            v.vocabulary().id("job").is_none(),
            "df-1 term should be pruned"
        );
        assert!(v.vocabulary().id("sleep").is_some() || v.vocabulary().id("feel").is_some());
    }

    #[test]
    fn max_features_caps_vocabulary() {
        let opts = VectorizerOptions {
            max_features: Some(5),
            ..VectorizerOptions::default()
        };
        let v = CountVectorizer::fit(&docs(), opts);
        assert_eq!(v.n_features(), 5);
    }

    #[test]
    fn bigram_options_add_ngrams() {
        let opts = VectorizerOptions {
            ngram_max: 2,
            remove_stopwords: false,
            ..VectorizerOptions::default()
        };
        let v = CountVectorizer::fit(&docs(), opts);
        assert!(
            v.vocabulary().terms().iter().any(|t| t.contains(' ')),
            "expected bigram terms"
        );
    }

    #[test]
    fn stemming_conflates_variants() {
        let opts = VectorizerOptions {
            stem: true,
            ..VectorizerOptions::default()
        };
        let v = CountVectorizer::fit(&["sleeping sleeps slept", "sleep"], opts);
        // "sleeping"/"sleeps"/"sleep" all stem to "sleep".
        let m = v.transform(&["sleeping", "sleep"]);
        let col = v.vocabulary().id("sleep").unwrap();
        assert!(m[(0, col)] > 0.0);
        assert!(m[(1, col)] > 0.0);
    }

    #[test]
    fn sparse_transform_matches_dense_for_both_vectorisers() {
        let count = CountVectorizer::fit(&docs(), VectorizerOptions::default());
        assert_eq!(
            count.transform_sparse(&docs()).to_dense(),
            count.transform(&docs())
        );
        let tfidf = TfidfVectorizer::fit_default(&docs());
        let sparse = tfidf.transform_sparse(&docs());
        assert_eq!(sparse.to_dense(), tfidf.transform(&docs()));
        // The whole point: a realistic row stores only its own terms.
        assert!(sparse.density() < 0.5, "density {}", sparse.density());
    }

    #[test]
    fn sublinear_tf_dampens_repeats() {
        let opts = VectorizerOptions {
            sublinear_tf: true,
            l2_normalize: false,
            ..VectorizerOptions::default()
        };
        let docs = vec!["anxiety anxiety anxiety anxiety", "anxiety calm"];
        let (v, m) = TfidfVectorizer::fit_transform(&docs, opts);
        let col = v.vocabulary().id("anxiety").unwrap();
        // 1 + ln(4) ≈ 2.39 rather than 4.
        assert!(m[(0, col)] < 3.0 * v.idf()[col]);
        assert!(m[(0, col)] > m[(1, col)]);
    }
}
