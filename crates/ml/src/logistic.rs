//! Multinomial logistic regression (softmax regression) with mini-batch SGD.
//!
//! The "LR" row of Table IV. Trained on TF-IDF features with L2 regularisation and a
//! class-weighting option that counteracts the corpus imbalance (SA has 406 posts, VA
//! only 150). The optimiser is plain mini-batch SGD with an inverse-scaling learning
//! rate — on a few thousand sparse-ish TF-IDF features this converges in a couple of
//! hundred epochs and keeps the implementation dependency-free and auditable.

use crate::classifier::Classifier;
use holistix_linalg::{softmax, FeatureMatrix, FeatureRows, Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`LogisticRegression`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegressionConfig {
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 regularisation strength (applied to weights, not the bias).
    pub l2: f64,
    /// Reweight examples inversely to their class frequency.
    pub class_weighted: bool,
    /// RNG seed for shuffling and initialisation.
    pub seed: u64,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.5,
            epochs: 200,
            batch_size: 32,
            l2: 1e-4,
            class_weighted: false,
            seed: 42,
        }
    }
}

/// Multinomial logistic regression.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    config: LogisticRegressionConfig,
    /// `n_classes × n_features` weight matrix.
    weights: Matrix,
    /// Per-class bias.
    bias: Vec<f64>,
    n_classes: usize,
    name: String,
}

impl LogisticRegression {
    /// New untrained model with the given configuration.
    pub fn new(config: LogisticRegressionConfig) -> Self {
        Self {
            config,
            weights: Matrix::zeros(0, 0),
            bias: Vec::new(),
            n_classes: 0,
            name: "LR".to_string(),
        }
    }

    /// New model with default configuration.
    pub fn default_config() -> Self {
        Self::new(LogisticRegressionConfig::default())
    }

    /// The fitted weight matrix (`n_classes × n_features`).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The fitted biases (one per class).
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// The configuration.
    pub fn config(&self) -> &LogisticRegressionConfig {
        &self.config
    }

    fn logits_row<F: FeatureRows>(&self, features: &F, row: usize) -> Vec<f64> {
        (0..self.n_classes)
            .map(|c| features.row_dot(row, self.weights.row(c)) + self.bias[c])
            .collect()
    }

    /// Training loop, generic over the feature representation. Sparse training is
    /// bit-identical to dense: every update the dense path applies for a zero
    /// feature is an exact IEEE-754 identity, so skipping the zeros changes
    /// nothing but the work done.
    fn fit_rows<F: FeatureRows>(&mut self, features: &F, labels: &[usize]) {
        assert_eq!(
            features.n_rows(),
            labels.len(),
            "feature rows {} != label count {}",
            features.n_rows(),
            labels.len()
        );
        assert!(!labels.is_empty(), "cannot fit on an empty training set");
        let n_features = features.n_cols();
        self.n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        self.weights = Matrix::zeros(self.n_classes, n_features);
        self.bias = vec![0.0; self.n_classes];

        // Optional inverse-frequency class weights.
        let mut class_weights = vec![1.0; self.n_classes];
        if self.config.class_weighted {
            let mut counts = vec![0usize; self.n_classes];
            for &l in labels {
                counts[l] += 1;
            }
            let n = labels.len() as f64;
            for (c, &count) in counts.iter().enumerate() {
                class_weights[c] = if count == 0 {
                    0.0
                } else {
                    n / (self.n_classes as f64 * count as f64)
                };
            }
        }

        let mut rng = Rng64::new(self.config.seed);
        let mut order: Vec<usize> = (0..labels.len()).collect();
        let batch = self.config.batch_size.max(1);

        for epoch in 0..self.config.epochs {
            rng.shuffle(&mut order);
            // Inverse-scaling learning-rate schedule.
            let lr = self.config.learning_rate / (1.0 + 0.01 * epoch as f64);
            for chunk in order.chunks(batch) {
                // Accumulate gradients over the mini-batch.
                let mut grad_w = Matrix::zeros(self.n_classes, n_features);
                let mut grad_b = vec![0.0; self.n_classes];
                for &i in chunk {
                    let probs = softmax(&self.logits_row(features, i));
                    let weight = class_weights[labels[i]];
                    for c in 0..self.n_classes {
                        let indicator = if c == labels[i] { 1.0 } else { 0.0 };
                        let err = (probs[c] - indicator) * weight;
                        if err == 0.0 {
                            continue;
                        }
                        let gw = grad_w.row_mut(c);
                        features.for_each_row_entry(i, |j, xv| gw[j] += err * xv);
                        grad_b[c] += err;
                    }
                }
                let scale = lr / chunk.len() as f64;
                // L2 shrinkage then gradient step.
                if self.config.l2 > 0.0 {
                    let shrink = 1.0 - lr * self.config.l2;
                    self.weights.map_inplace(|w| w * shrink);
                }
                self.weights.add_scaled(&grad_w, -scale);
                for (b, g) in self.bias.iter_mut().zip(&grad_b) {
                    *b -= scale * g;
                }
            }
        }
    }

    fn predict_proba_rows<F: FeatureRows>(&self, features: &F) -> Matrix {
        assert!(self.n_classes > 0, "predict called before fit");
        let mut out = Matrix::zeros(features.n_rows(), self.n_classes);
        for r in 0..features.n_rows() {
            out.set_row(r, &softmax(&self.logits_row(features, r)));
        }
        out
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, features: &Matrix, labels: &[usize]) {
        self.fit_rows(features, labels);
    }

    fn fit_features(&mut self, features: &FeatureMatrix, labels: &[usize]) {
        self.fit_rows(features, labels);
    }

    fn predict_proba(&self, features: &Matrix) -> Matrix {
        self.predict_proba_rows(features)
    }

    fn predict_proba_features(&self, features: &FeatureMatrix) -> Matrix {
        self.predict_proba_rows(features)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny linearly separable 3-class problem.
    fn toy_problem() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let jitter = (i % 5) as f64 * 0.01;
            match i % 3 {
                0 => {
                    rows.push(vec![1.0 + jitter, 0.0, 0.0]);
                    labels.push(0);
                }
                1 => {
                    rows.push(vec![0.0, 1.0 + jitter, 0.0]);
                    labels.push(1);
                }
                _ => {
                    rows.push(vec![0.0, 0.0, 1.0 + jitter]);
                    labels.push(2);
                }
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn learns_linearly_separable_problem() {
        let (x, y) = toy_problem();
        let mut clf = LogisticRegression::default_config();
        clf.fit(&x, &y);
        let preds = clf.predict(&x);
        let acc = preds.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = toy_problem();
        let mut clf = LogisticRegression::default_config();
        clf.fit(&x, &y);
        let proba = clf.predict_proba(&x);
        for r in 0..proba.rows() {
            let s: f64 = proba.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(proba.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (x, y) = toy_problem();
        let mut a = LogisticRegression::default_config();
        let mut b = LogisticRegression::default_config();
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn class_weighting_helps_minority_recall() {
        // Imbalanced problem: class 1 is rare and overlaps class 0.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            rows.push(vec![1.0, 0.1 * (i % 7) as f64]);
            labels.push(0);
        }
        for i in 0..6 {
            rows.push(vec![0.9, 1.0 + 0.1 * i as f64]);
            labels.push(1);
        }
        let x = Matrix::from_rows(&rows);
        let mut unweighted = LogisticRegression::new(LogisticRegressionConfig {
            class_weighted: false,
            ..LogisticRegressionConfig::default()
        });
        let mut weighted = LogisticRegression::new(LogisticRegressionConfig {
            class_weighted: true,
            ..LogisticRegressionConfig::default()
        });
        unweighted.fit(&x, &labels);
        weighted.fit(&x, &labels);
        let recall_minority = |clf: &LogisticRegression| {
            let preds = clf.predict(&x);
            let tp = preds
                .iter()
                .zip(&labels)
                .filter(|(p, l)| **p == 1 && **l == 1)
                .count();
            tp as f64 / 6.0
        };
        assert!(recall_minority(&weighted) >= recall_minority(&unweighted));
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_panics() {
        LogisticRegression::default_config().fit(&Matrix::zeros(0, 3), &[]);
    }

    #[test]
    #[should_panic(expected = "predict called before fit")]
    fn predict_before_fit_panics() {
        let clf = LogisticRegression::default_config();
        let _ = clf.predict_proba(&Matrix::zeros(1, 3));
    }
}
