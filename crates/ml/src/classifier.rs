//! The classifier abstraction shared by every baseline.
//!
//! Table IV compares nine models. The cross-validation driver, the experiment runner
//! in the core crate and the LIME explainer all interact with models through this one
//! trait, so classical and transformer baselines are interchangeable.

use holistix_linalg::{FeatureMatrix, Matrix};

/// A multi-class classifier over feature matrices.
///
/// Rows of the feature matrix are examples; labels are dense class indices
/// `0..n_classes`. The dense `Matrix` methods are the historical interface; the
/// `*_features` methods accept a [`FeatureMatrix`] so sparse TF-IDF workloads
/// never have to materialise the dense grid. The default `*_features`
/// implementations densify — the three classical baselines override them with
/// genuinely sparse paths.
pub trait Classifier {
    /// Fit the model on a training matrix and its labels.
    fn fit(&mut self, features: &Matrix, labels: &[usize]);

    /// Class probability estimates, one row per example, one column per class.
    /// Implementations must return rows that sum to 1 (up to rounding).
    fn predict_proba(&self, features: &Matrix) -> Matrix;

    /// Hard class predictions (argmax of `predict_proba` by default).
    fn predict(&self, features: &Matrix) -> Vec<usize> {
        let proba = self.predict_proba(features);
        (0..proba.rows())
            .map(|r| holistix_linalg::argmax(proba.row(r)).unwrap_or(0))
            .collect()
    }

    /// Fit on a dense-or-sparse feature matrix. The default densifies; sparse-aware
    /// models override to train straight off the CSR representation.
    fn fit_features(&mut self, features: &FeatureMatrix, labels: &[usize]) {
        match features {
            FeatureMatrix::Dense(m) => self.fit(m, labels),
            FeatureMatrix::Sparse(m) => self.fit(&m.to_dense(), labels),
        }
    }

    /// Probability estimates over a dense-or-sparse feature matrix. The default
    /// densifies; sparse-aware models override.
    fn predict_proba_features(&self, features: &FeatureMatrix) -> Matrix {
        match features {
            FeatureMatrix::Dense(m) => self.predict_proba(m),
            FeatureMatrix::Sparse(m) => self.predict_proba(&m.to_dense()),
        }
    }

    /// Hard predictions over a dense-or-sparse feature matrix (argmax of
    /// [`predict_proba_features`](Self::predict_proba_features) by default).
    fn predict_features(&self, features: &FeatureMatrix) -> Vec<usize> {
        let proba = self.predict_proba_features(features);
        (0..proba.rows())
            .map(|r| holistix_linalg::argmax(proba.row(r)).unwrap_or(0))
            .collect()
    }

    /// Number of classes the model was fitted for.
    fn n_classes(&self) -> usize;

    /// A short human-readable name used in reports and tables.
    fn name(&self) -> &str;
}

/// A trivial majority-class classifier, used as a sanity floor in tests and ablations.
#[derive(Debug, Clone, Default)]
pub struct MajorityClassifier {
    majority: usize,
    n_classes: usize,
}

impl Classifier for MajorityClassifier {
    fn fit(&mut self, _features: &Matrix, labels: &[usize]) {
        assert!(!labels.is_empty(), "cannot fit on an empty label set");
        self.n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        let mut counts = vec![0usize; self.n_classes];
        for &l in labels {
            counts[l] += 1;
        }
        self.majority = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0);
    }

    fn predict_proba(&self, features: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(features.rows(), self.n_classes.max(1));
        for r in 0..out.rows() {
            out[(r, self.majority)] = 1.0;
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn name(&self) -> &str {
        "MajorityClass"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_classifier_predicts_most_common_label() {
        let x = Matrix::zeros(5, 2);
        let y = vec![0, 1, 1, 1, 2];
        let mut clf = MajorityClassifier::default();
        clf.fit(&x, &y);
        assert_eq!(clf.n_classes(), 3);
        assert_eq!(clf.predict(&Matrix::zeros(3, 2)), vec![1, 1, 1]);
        let proba = clf.predict_proba(&Matrix::zeros(1, 2));
        assert_eq!(proba.row(0), &[0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty label set")]
    fn fitting_on_empty_labels_panics() {
        MajorityClassifier::default().fit(&Matrix::zeros(0, 2), &[]);
    }
}
