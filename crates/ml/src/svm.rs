//! One-vs-rest linear SVM trained with SGD on the hinge loss.
//!
//! The "Linear SVM" row of Table IV. Each class gets a binary hinge-loss classifier
//! against the rest (the strategy scikit-learn's `LinearSVC` uses for multi-class);
//! prediction takes the class with the largest decision value. Probability estimates —
//! needed so the SVM can plug into the shared [`Classifier`] interface and into LIME —
//! come from a softmax over the decision values, which preserves the argmax.

use crate::classifier::Classifier;
use holistix_linalg::{softmax, FeatureMatrix, FeatureRows, Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`LinearSvm`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvmConfig {
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Hinge margin (1.0 for the standard SVM loss).
    pub margin: f64,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for LinearSvmConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.5,
            epochs: 200,
            l2: 1e-4,
            margin: 1.0,
            seed: 42,
        }
    }
}

/// One-vs-rest linear SVM.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    config: LinearSvmConfig,
    /// `n_classes × n_features` weights (one binary separator per class).
    weights: Matrix,
    bias: Vec<f64>,
    n_classes: usize,
    name: String,
}

impl LinearSvm {
    /// New untrained model.
    pub fn new(config: LinearSvmConfig) -> Self {
        Self {
            config,
            weights: Matrix::zeros(0, 0),
            bias: Vec::new(),
            n_classes: 0,
            name: "Linear SVM".to_string(),
        }
    }

    /// New model with default configuration.
    pub fn default_config() -> Self {
        Self::new(LinearSvmConfig::default())
    }

    /// The per-class decision values for every row of `features`.
    pub fn decision_function(&self, features: &Matrix) -> Matrix {
        self.decision_rows(features)
    }

    /// Decision values, generic over the feature representation.
    fn decision_rows<F: FeatureRows>(&self, features: &F) -> Matrix {
        assert!(self.n_classes > 0, "decision_function called before fit");
        let mut out = Matrix::zeros(features.n_rows(), self.n_classes);
        for r in 0..features.n_rows() {
            for c in 0..self.n_classes {
                out[(r, c)] = features.row_dot(r, self.weights.row(c)) + self.bias[c];
            }
        }
        out
    }

    /// Training loop, generic over the feature representation; the sparse path is
    /// bit-identical to the dense one (zero-feature updates are exact IEEE-754
    /// identities).
    fn fit_rows<F: FeatureRows>(&mut self, features: &F, labels: &[usize]) {
        assert_eq!(
            features.n_rows(),
            labels.len(),
            "feature/label length mismatch"
        );
        assert!(!labels.is_empty(), "cannot fit on an empty training set");
        let n_features = features.n_cols();
        self.n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        self.weights = Matrix::zeros(self.n_classes, n_features);
        self.bias = vec![0.0; self.n_classes];

        let mut rng = Rng64::new(self.config.seed);
        let mut order: Vec<usize> = (0..labels.len()).collect();

        for epoch in 0..self.config.epochs {
            rng.shuffle(&mut order);
            let lr = self.config.learning_rate / (1.0 + 0.01 * epoch as f64);
            for &i in &order {
                for c in 0..self.n_classes {
                    let target = if labels[i] == c { 1.0 } else { -1.0 };
                    let decision = features.row_dot(i, self.weights.row(c)) + self.bias[c];
                    // L2 shrinkage on every step (Pegasos-style).
                    let shrink = 1.0 - lr * self.config.l2;
                    for wv in self.weights.row_mut(c) {
                        *wv *= shrink;
                    }
                    if target * decision < self.config.margin {
                        // Sub-gradient of the hinge loss: move towards target * x.
                        let wrow = self.weights.row_mut(c);
                        let step = lr * target;
                        features.for_each_row_entry(i, |j, xv| wrow[j] += step * xv);
                        self.bias[c] += step;
                    }
                }
            }
        }
    }

    fn predict_proba_rows<F: FeatureRows>(&self, features: &F) -> Matrix {
        let decisions = self.decision_rows(features);
        let mut out = Matrix::zeros(decisions.rows(), self.n_classes);
        for r in 0..decisions.rows() {
            out.set_row(r, &softmax(decisions.row(r)));
        }
        out
    }

    fn predict_rows<F: FeatureRows>(&self, features: &F) -> Vec<usize> {
        let decisions = self.decision_rows(features);
        (0..decisions.rows())
            .map(|r| holistix_linalg::argmax(decisions.row(r)).unwrap_or(0))
            .collect()
    }

    /// The fitted weights.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, features: &Matrix, labels: &[usize]) {
        self.fit_rows(features, labels);
    }

    fn fit_features(&mut self, features: &FeatureMatrix, labels: &[usize]) {
        self.fit_rows(features, labels);
    }

    fn predict_proba(&self, features: &Matrix) -> Matrix {
        self.predict_proba_rows(features)
    }

    fn predict_proba_features(&self, features: &FeatureMatrix) -> Matrix {
        self.predict_proba_rows(features)
    }

    fn predict(&self, features: &Matrix) -> Vec<usize> {
        self.predict_rows(features)
    }

    fn predict_features(&self, features: &FeatureMatrix) -> Vec<usize> {
        self.predict_rows(features)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_problem() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..36 {
            let jitter = (i % 6) as f64 * 0.02;
            match i % 3 {
                0 => {
                    rows.push(vec![1.0 + jitter, 0.0]);
                    labels.push(0);
                }
                1 => {
                    rows.push(vec![-1.0 - jitter, 1.0]);
                    labels.push(1);
                }
                _ => {
                    rows.push(vec![0.0, -1.0 - jitter]);
                    labels.push(2);
                }
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn separates_toy_classes() {
        let (x, y) = toy_problem();
        let mut clf = LinearSvm::default_config();
        clf.fit(&x, &y);
        let preds = clf.predict(&x);
        let acc = preds.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn decision_values_drive_argmax_prediction() {
        let (x, y) = toy_problem();
        let mut clf = LinearSvm::default_config();
        clf.fit(&x, &y);
        let decisions = clf.decision_function(&x);
        let preds = clf.predict(&x);
        for (r, &p) in preds.iter().enumerate() {
            let am = holistix_linalg::argmax(decisions.row(r)).unwrap();
            assert_eq!(p, am);
        }
    }

    #[test]
    fn probabilities_are_valid_and_consistent_with_predictions() {
        let (x, y) = toy_problem();
        let mut clf = LinearSvm::default_config();
        clf.fit(&x, &y);
        let proba = clf.predict_proba(&x);
        let preds = clf.predict(&x);
        for (r, &pred) in preds.iter().enumerate() {
            assert!((proba.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert_eq!(holistix_linalg::argmax(proba.row(r)).unwrap(), pred);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = toy_problem();
        let mut a = LinearSvm::default_config();
        let mut b = LinearSvm::default_config();
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn decision_before_fit_panics() {
        let clf = LinearSvm::default_config();
        let _ = clf.decision_function(&Matrix::zeros(1, 2));
    }
}
