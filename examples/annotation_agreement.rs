//! Annotation study: reproduce the paper's §II-E / Fig. 2 annotation framework —
//! two independently trained annotators label the corpus, inter-annotator agreement is
//! measured with Fleiss' kappa (paper: κ = 75.92 %), and the confusion pattern between
//! wellness dimensions is inspected (the Limitations section's EA↔SA / SpiA↔EA
//! ambiguity).
//!
//! Run with:
//! ```bash
//! cargo run --release --example annotation_agreement
//! ```

use holistix::prelude::*;

fn main() {
    let corpus = HolistixCorpus::generate(42);
    println!(
        "Annotation study over {} posts with two simulated student annotators\n",
        corpus.len()
    );

    let study = run_annotation_study(&corpus, 7);

    println!("=== Inter-annotator agreement (paper: Fleiss' κ = 75.92%) ===\n");
    println!(
        "  Raw percentage agreement: {:.2}%",
        100.0 * study.agreement.percent_agreement
    );
    println!(
        "  Fleiss' kappa:            {:.2}%",
        100.0 * study.agreement.fleiss_kappa
    );
    println!(
        "  Cohen's kappa:            {:.2}%",
        100.0 * study.agreement.cohen_kappa
    );
    println!(
        "  Disagreements adjudicated towards gold by the perplexity guidelines: {:.1}%",
        100.0 * study.adjudicated_fraction
    );

    println!("\n=== Most frequent annotator confusions (gold -> assigned) ===\n");
    for (gold, assigned, count) in study.confusion_pairs().into_iter().take(10) {
        println!(
            "  {:<4} -> {:<4} {:>4} times",
            gold.code(),
            assigned.code(),
            count
        );
    }

    println!("\n=== Per-annotator accuracy against the gold labels ===\n");
    for (name, labels) in [
        ("annotator-1", &study.annotator_a),
        ("annotator-2", &study.annotator_b),
    ] {
        let correct = labels
            .iter()
            .zip(&study.gold)
            .filter(|(a, g)| a == g)
            .count();
        println!(
            "  {name}: {:.1}% of {} posts",
            100.0 * correct as f64 / study.gold.len() as f64,
            study.gold.len()
        );
    }

    println!("\nThe ambiguity concentrates on the Emotional and Spiritual dimensions, matching");
    println!("the paper's Limitations section — the same posts that make EA/SpiA the hardest");
    println!("classes for every model in Table IV.");
}
