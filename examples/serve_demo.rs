//! Serving demo: start the warm-model HTTP server and drive it over loopback.
//!
//! Two modes:
//!
//! ```bash
//! cargo run --release --example serve_demo            # load generator + metrics report
//! cargo run --release --example serve_demo -- --smoke # CI smoke: keep-alive + 256 idle conns + /reload + admission 429s
//! ```
//!
//! The default mode fits a registry, starts the server on an ephemeral
//! loopback port, fans out concurrent clients — each holding **one
//! keep-alive connection** for its whole request stream — and prints the
//! `/metrics` document: the batch-size histogram shows cross-request
//! micro-batching doing its job and `keepalive_reuses_total` shows the
//! connection reuse.

use holistix::prelude::*;
use holistix_serve::{
    http_request, serve, validate_exposition, AdmissionConfig, BatchConfig, HttpClient,
    ModelRegistry, RateLimitConfig, RegistryConfig, ServeConfig,
};
use std::net::SocketAddr;
use std::time::Duration;

fn fail(message: &str) -> ! {
    eprintln!("serve_demo: {message}");
    std::process::exit(1);
}

/// Pull `threads.os_threads` out of a `/metrics` document.
fn os_threads_from(metrics_body: &str) -> u64 {
    let document = match holistix::corpus::JsonValue::parse(metrics_body) {
        Ok(document) => document,
        Err(e) => fail(&format!("metrics response is not JSON: {e}")),
    };
    match document
        .get("threads")
        .and_then(|t| t.get("os_threads"))
        .and_then(|v| v.as_f64())
    {
        Some(n) => n as u64,
        None => fail("metrics missing threads.os_threads"),
    }
}

fn request_ok(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> String {
    match http_request(addr, method, path, body) {
        Ok((200, body)) => body,
        Ok((status, body)) => fail(&format!("{method} {path} -> {status}: {body}")),
        Err(e) => fail(&format!("{method} {path} failed: {e}")),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let (profile, training_posts) = if smoke {
        (SpeedProfile::Tiny, 90)
    } else {
        (SpeedProfile::Fast, 400)
    };
    println!("fitting registry ({profile:?} profile, {training_posts} training posts)…");
    let registry = ModelRegistry::fit_synthetic(&RegistryConfig {
        kinds: vec![BaselineKind::LogisticRegression, BaselineKind::GaussianNb],
        profile,
        training_posts,
        seed: 42,
    });

    let config = ServeConfig {
        pollers: 2,
        handlers: 8,
        batch: BatchConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(5),
        },
        ..ServeConfig::default()
    };
    let server = match serve("127.0.0.1:0", registry, config) {
        Ok(server) => server,
        Err(e) => fail(&format!("bind failed: {e}")),
    };
    let addr = server.addr();
    println!("serving on http://{addr}");

    let health = request_ok(addr, "GET", "/healthz", None);
    println!("healthz: {health}");

    if smoke {
        let body = r#"{"texts":["i feel alone and cut off from everyone"]}"#;

        // Keep-alive round-trip: ≥2 requests over ONE persistent connection,
        // then assert the server counted the reuse — proof the connection was
        // actually held open, not silently reopened per request.
        let mut client = match HttpClient::connect(addr) {
            Ok(client) => client,
            Err(e) => fail(&format!("keep-alive connect failed: {e}")),
        };
        let mut predict = String::new();
        for round in 0..3 {
            match client.request("POST", "/predict", Some(body)) {
                Ok((200, response)) => predict = response,
                Ok((status, response)) => fail(&format!(
                    "keep-alive predict {round} -> {status}: {response}"
                )),
                Err(e) => fail(&format!("keep-alive predict {round} failed: {e}")),
            }
        }
        drop(client);
        println!("predict: {predict}");
        if !predict.contains("probabilities") {
            fail("predict response carries no probabilities");
        }
        let reuses = server.metrics().keepalive_reuses_total();
        if reuses < 2 {
            fail(&format!(
                "3 requests over one connection produced only {reuses} keep-alive reuses"
            ));
        }
        println!("keep-alive ok ({reuses} reuses over one connection)");

        // Connection-multiplexer smoke: park 256 idle keep-alive connections
        // and assert via /metrics that the OS thread count is a function of
        // the configured pollers + handlers + queues, not of the client count.
        // This runs BEFORE the /reload check because /reload legitimately
        // spawns a detached fit thread and would move the baseline.
        let threads_before = os_threads_from(&request_ok(addr, "GET", "/metrics", None));
        let mut parked = Vec::with_capacity(256);
        for i in 0..256 {
            let mut attempts = 0;
            loop {
                match std::net::TcpStream::connect(addr) {
                    Ok(stream) => {
                        parked.push(stream);
                        break;
                    }
                    Err(e) => {
                        attempts += 1;
                        if attempts >= 200 {
                            fail(&format!("idle connection {i} could not connect: {e}"));
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            if server.metrics().connections().open() >= 256 {
                break;
            }
            if std::time::Instant::now() >= deadline {
                fail(&format!(
                    "only {} of 256 idle connections were accepted within 30s",
                    server.metrics().connections().open()
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let during_idle = request_ok(addr, "POST", "/predict", Some(body));
        if !during_idle.contains("probabilities") {
            fail("predict with 256 idle connections parked carries no probabilities");
        }
        let threads_after = os_threads_from(&request_ok(addr, "GET", "/metrics", None));
        if threads_after != threads_before {
            fail(&format!(
                "OS thread count moved with idle connections: {threads_before} -> {threads_after}"
            ));
        }
        drop(parked);
        println!(
            "multiplexer ok (256 idle connections parked, {threads_before} OS threads before and after)"
        );

        // /reload round-trip: upload a fresh JSONL corpus, confirm 202, keep
        // predicting while the off-thread fit runs, wait for the atomic swap.
        let reload_corpus = HolistixCorpus::generate_small(150, 99);
        let jsonl = holistix::corpus::io::to_jsonl(&reload_corpus.posts);
        let n_posts = reload_corpus.posts.len();
        match http_request(addr, "POST", "/reload", Some(&jsonl)) {
            Ok((202, body)) => println!("reload accepted: {body}"),
            Ok((status, body)) => fail(&format!("POST /reload -> {status}: {body}")),
            Err(e) => fail(&format!("POST /reload failed: {e}")),
        }
        let during = request_ok(addr, "POST", "/predict", Some(body));
        if !during.contains("probabilities") {
            fail("predict during reload carries no probabilities");
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            if server.metrics().reloads_total() >= 1 {
                break;
            }
            if std::time::Instant::now() >= deadline {
                fail("reload did not complete within 60s");
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        let metrics = request_ok(addr, "GET", "/metrics", None);
        if !metrics.contains(&format!("\"corpus_size\":{n_posts}")) {
            fail(&format!(
                "metrics do not show the reloaded corpus size {n_posts}: {metrics}"
            ));
        }
        let after = request_ok(addr, "POST", "/predict", Some(body));
        if !after.contains("probabilities") {
            fail("predict after reload carries no probabilities");
        }
        println!("reload round-trip ok ({n_posts} posts)");

        // Observability round-trip: scrape JSON then Prometheus, validate the
        // exposition format, and assert the two documents agree on counters
        // that don't move between scrapes (the scrape itself increments the
        // metrics endpoint's own request counter, so that one is excluded).
        let json_metrics = request_ok(addr, "GET", "/metrics", None);
        let document = match holistix::corpus::JsonValue::parse(&json_metrics) {
            Ok(document) => document,
            Err(e) => fail(&format!("metrics response is not JSON: {e}")),
        };
        let json_predicts = document
            .get("requests")
            .and_then(|r| r.get("predict"))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| fail("metrics missing requests.predict"));
        let prometheus = request_ok(addr, "GET", "/metrics?format=prometheus", None);
        if let Err(violation) = validate_exposition(&prometheus) {
            fail(&format!("invalid Prometheus exposition: {violation}"));
        }
        let prom_predict_line = format!(
            "holistix_requests_total{{endpoint=\"predict\"}} {}",
            json_predicts as u64
        );
        if !prometheus.contains(&prom_predict_line) {
            fail(&format!(
                "Prometheus scrape disagrees with JSON: wanted {prom_predict_line:?}"
            ));
        }
        println!(
            "prometheus ok ({} exposition lines, predict counter matches JSON)",
            prometheus.lines().count()
        );

        // /debug/slow round-trip: the smoke's own predicts must be retained
        // with their stage breakdowns. Traces finalize at last-byte-written,
        // one poller tick after the client reads a response — poll briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let slow_count = loop {
            let slow = request_ok(addr, "GET", "/debug/slow", None);
            let document = match holistix::corpus::JsonValue::parse(&slow) {
                Ok(document) => document,
                Err(e) => fail(&format!("/debug/slow response is not JSON: {e}")),
            };
            let traces = document
                .get("traces")
                .and_then(|t| t.as_array().map(<[_]>::len))
                .unwrap_or_else(|| fail("/debug/slow missing traces array"));
            if traces > 0 {
                break traces;
            }
            if std::time::Instant::now() >= deadline {
                fail("/debug/slow never retained a trace");
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        println!("debug/slow ok ({slow_count} retained traces)");

        // Admission round-trip: a second server with a zero-refill token
        // bucket (rate 0 never refills, so each connection gets exactly
        // `burst` requests — fully deterministic, no timing). The third
        // predict over one connection must draw a counted 429 with a
        // parseable Retry-After, and the shed must show up in both metrics
        // documents.
        let shed_registry = ModelRegistry::fit_synthetic(&RegistryConfig {
            kinds: vec![BaselineKind::LogisticRegression],
            profile: SpeedProfile::Tiny,
            training_posts: 90,
            seed: 7,
        });
        let shed_server = match serve(
            "127.0.0.1:0",
            shed_registry,
            ServeConfig {
                handlers: 2,
                admission: AdmissionConfig {
                    rate_limit: Some(RateLimitConfig {
                        rate_per_s: 0.0,
                        burst: 2.0,
                    }),
                    retry_after: Duration::from_secs(1),
                    ..AdmissionConfig::default()
                },
                ..ServeConfig::default()
            },
        ) {
            Ok(server) => server,
            Err(e) => fail(&format!("admission server bind failed: {e}")),
        };
        let shed_addr = shed_server.addr();
        let mut client = match HttpClient::connect(shed_addr) {
            Ok(client) => client,
            Err(e) => fail(&format!("admission connect failed: {e}")),
        };
        let mut rejected = 0u64;
        for round in 0..3 {
            match client.request_full("POST", "/predict", Some(body), &[]) {
                Ok((200, _, _)) => {}
                Ok((429, _, headers)) => {
                    let retry_after = headers
                        .iter()
                        .find(|(name, _)| name.eq_ignore_ascii_case("retry-after"))
                        .and_then(|(_, value)| value.trim().parse::<u64>().ok())
                        .unwrap_or_else(|| fail("429 without a whole-seconds Retry-After header"));
                    if retry_after == 0 {
                        fail("Retry-After of 0 tells clients to hammer immediately");
                    }
                    rejected += 1;
                }
                Ok((status, response, _)) => fail(&format!(
                    "admission predict {round} -> {status}: {response}"
                )),
                Err(e) => fail(&format!("admission predict {round} failed: {e}")),
            }
        }
        drop(client);
        if rejected == 0 {
            fail("3 predicts past a burst of 2 produced no 429");
        }
        let shed_json = request_ok(shed_addr, "GET", "/metrics", None);
        let document = match holistix::corpus::JsonValue::parse(&shed_json) {
            Ok(document) => document,
            Err(e) => fail(&format!("admission metrics response is not JSON: {e}")),
        };
        let json_sheds = document
            .get("admission")
            .and_then(|a| a.get("shed"))
            .and_then(|s| s.get("predict"))
            .and_then(|p| p.get("rate_limited"))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| fail("metrics missing admission.shed.predict.rate_limited"));
        if json_sheds as u64 != rejected {
            fail(&format!(
                "JSON shed counter disagrees with the client: {json_sheds} vs {rejected} 429s"
            ));
        }
        let shed_prometheus = request_ok(shed_addr, "GET", "/metrics?format=prometheus", None);
        if let Err(violation) = validate_exposition(&shed_prometheus) {
            fail(&format!("invalid Prometheus exposition: {violation}"));
        }
        let shed_line = format!(
            "holistix_shed_total{{endpoint=\"predict\",reason=\"rate_limited\"}} {rejected}"
        );
        if !shed_prometheus.contains(&shed_line) {
            fail(&format!(
                "Prometheus scrape disagrees with JSON: wanted {shed_line:?}"
            ));
        }
        shed_server.shutdown();
        println!("admission ok ({rejected} rate-limit 429s counted in both metrics formats)");

        // Quantized-transformer round-trip: a registry mixing classical LR
        // with an i8-quantized transformer (Tiny profile keeps the fit in CI
        // smoke territory), one /predict routed to the quantized kind, and
        // the per-kind queue visible — with its `scorer_kind` label — in
        // both /metrics formats.
        let quant_corpus = HolistixCorpus::generate_small(60, 21);
        let quant_texts = quant_corpus.texts();
        let quant_labels = quant_corpus.label_indices();
        let lr = fit_scorer(
            BaselineKind::LogisticRegression,
            SpeedProfile::Tiny,
            &quant_texts,
            &quant_labels,
            21,
            1,
        );
        let f64_scorer = TransformerScorer::fit(
            ModelKind::MentalBert,
            SpeedProfile::Tiny,
            &quant_texts,
            &quant_labels,
            21,
        );
        let quantized: std::sync::Arc<dyn Scorer> =
            std::sync::Arc::new(QuantizedScorer::from_transformer(&f64_scorer));
        let quant_kind = quantized.kind().name();
        let quant_registry = ModelRegistry::from_scorers(vec![lr, quantized]);
        let quant_server = match serve("127.0.0.1:0", quant_registry, ServeConfig::default()) {
            Ok(server) => server,
            Err(e) => fail(&format!("quantized server bind failed: {e}")),
        };
        let quant_addr = quant_server.addr();
        let quant_body = format!(
            "{{\"texts\":[\"i feel alone and cut off from everyone\"],\"model\":\"{quant_kind}\"}}"
        );
        let quant_predict = request_ok(quant_addr, "POST", "/predict", Some(&quant_body));
        if !quant_predict.contains("probabilities") {
            fail("quantized predict response carries no probabilities");
        }
        let quant_json = request_ok(quant_addr, "GET", "/metrics", None);
        let document = match holistix::corpus::JsonValue::parse(&quant_json) {
            Ok(document) => document,
            Err(e) => fail(&format!("quantized metrics response is not JSON: {e}")),
        };
        let scored = document
            .get("queues")
            .and_then(|q| q.get(&quant_kind))
            .and_then(|k| k.get("texts_scored"))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| fail(&format!("metrics missing queues.{quant_kind}.texts_scored")));
        if scored < 1.0 {
            fail(&format!(
                "quantized queue scored {scored} texts after one predict"
            ));
        }
        let quant_prometheus = request_ok(quant_addr, "GET", "/metrics?format=prometheus", None);
        if let Err(violation) = validate_exposition(&quant_prometheus) {
            fail(&format!("invalid Prometheus exposition: {violation}"));
        }
        let quant_series = format!(
            "holistix_queue_texts_scored_total{{kind=\"{quant_kind}\",scorer_kind=\"quantized\"}}"
        );
        if !quant_prometheus.contains(&quant_series) {
            fail(&format!(
                "Prometheus scrape is missing the quantized queue series {quant_series:?}"
            ));
        }
        quant_server.shutdown();
        println!("quantized ok ({quant_kind} served, per-kind queue in both metrics formats)");

        server.shutdown();
        println!("smoke ok");
        return;
    }

    // Load generator: concurrent clients posting held-out texts, each over
    // one persistent keep-alive connection.
    const CLIENTS: usize = 6;
    const REQUESTS_PER_CLIENT: usize = 25;
    let corpus = HolistixCorpus::generate_small(200, 7);
    let pool: Vec<String> = corpus.texts().iter().map(|t| t.to_string()).collect();

    println!("driving {CLIENTS} keep-alive clients × {REQUESTS_PER_CLIENT} requests…");
    crossbeam::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            let pool = &pool;
            scope.spawn(move |_| {
                let mut client = match HttpClient::connect(addr) {
                    Ok(client) => client,
                    Err(e) => fail(&format!("client {client_id} connect failed: {e}")),
                };
                for i in 0..REQUESTS_PER_CLIENT {
                    // Mix single- and multi-text requests across both models.
                    let n_texts = 1 + (client_id + i) % 3;
                    let start = (client_id * REQUESTS_PER_CLIENT + i * 3) % (pool.len() - n_texts);
                    let texts: Vec<String> = pool[start..start + n_texts]
                        .iter()
                        .map(|t| holistix::corpus::json::json_escape(t))
                        .collect();
                    let model = if i % 4 == 0 { "Gaussian NB" } else { "LR" };
                    let body = format!("{{\"texts\":[{}],\"model\":\"{model}\"}}", texts.join(","));
                    match client.request("POST", "/predict", Some(&body)) {
                        Ok((200, _)) => {}
                        Ok((status, response)) => {
                            fail(&format!("POST /predict -> {status}: {response}"))
                        }
                        Err(e) => fail(&format!("POST /predict failed: {e}")),
                    }
                }
            });
        }
    })
    .expect("load generator scope failed");
    println!(
        "keep-alive reuses: {}",
        server.metrics().keepalive_reuses_total()
    );

    let explain = request_ok(
        addr,
        "POST",
        "/explain",
        Some(
            r#"{"text":"i feel alone and isolated and my job drains me","top_k":5,"n_samples":100}"#,
        ),
    );
    println!("\nexplain: {explain}");

    let metrics = request_ok(addr, "GET", "/metrics", None);
    println!("\nmetrics: {metrics}");
    server.shutdown();
    println!(
        "\ndone: {} requests served",
        CLIENTS * REQUESTS_PER_CLIENT + 3
    );
}
