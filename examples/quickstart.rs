//! Quickstart: generate a Holistix-style corpus, train a baseline, classify a post and
//! explain the prediction — the Fig. 1 workflow of the paper in ~40 lines.
//!
//! Run with:
//! ```bash
//! cargo run --release --example quickstart
//! ```

use holistix::prelude::*;

fn main() {
    // 1. A synthetic Holistix corpus calibrated to the paper's Table II statistics.
    //    (Swap in a real release with `holistix::corpus::io::read_jsonl` if you have one.)
    let corpus = HolistixCorpus::generate_small(300, 42);
    println!(
        "Corpus: {} posts across {} wellness dimensions\n",
        corpus.len(),
        ALL_DIMENSIONS.len()
    );

    // 2. Train the logistic-regression baseline on the paper's train split.
    let labels = corpus.label_indices();
    let texts = corpus.texts();
    let split = holistix::corpus::splits::paper_split(&labels, 6, 42);
    let train_texts: Vec<&str> = split.train.iter().map(|&i| texts[i]).collect();
    let train_labels: Vec<usize> = split.train.iter().map(|&i| labels[i]).collect();
    let model = FittedBaseline::fit(
        BaselineKind::LogisticRegression,
        SpeedProfile::Fast,
        &train_texts,
        &train_labels,
        42,
    );

    // 3. Classify a held-out post.
    let post = &corpus.posts[split.test[0]];
    let probabilities = model.probabilities_one(&post.post.text);
    let predicted = WellnessDimension::from_index(
        holistix::linalg::argmax(&probabilities).expect("six-class probabilities"),
    );
    println!("Post:      {}", post.post.text);
    println!("Gold:      {}", post.label.name());
    println!("Predicted: {}", predicted.name());
    for dim in ALL_DIMENSIONS {
        println!("  P({:<4}) = {:.3}", dim.code(), probabilities[dim.index()]);
    }

    // 4. Explain the prediction with LIME and compare against the gold span.
    let explainer = LimeExplainer::default_config();
    let explanation = explainer.explain(&model, &post.post.text, None);
    println!("\nGold explanation span: \"{}\"", post.span_text());
    println!(
        "LIME top keywords:     {}",
        explanation.top_tokens(5).join(", ")
    );
}
