//! Explainability evaluation: reproduce the paper's Table V — LIME explanation quality
//! (F1, precision, recall, ROUGE, BLEU against gold explanation spans) for the two
//! top-performing models, logistic regression and the MentalBERT analogue.
//!
//! Run with:
//! ```bash
//! cargo run --release --example explainability             # fast profile
//! cargo run --release --example explainability -- --paper  # full corpus, slow
//! ```

use holistix::prelude::*;

fn main() {
    let paper_mode = std::env::args().any(|a| a == "--paper");
    let config = if paper_mode {
        Table5Config::paper()
    } else {
        Table5Config::fast()
    };

    println!(
        "Explaining {} held-out posts per model with LIME ({} samples per explanation)…\n",
        config.n_explanations, config.lime.n_samples
    );

    let result = run_table5(&config);
    println!("=== Table V: explainability of top performing models using LIME ===\n");
    println!("{result}");
    println!("Paper reference:");
    println!("LR           0.4221     0.3140   0.6976   0.3645   0.1349");
    println!("MentalBERT   0.4471     0.4901   0.7463   0.3833   0.1412");

    // A qualitative look at a single explanation, Fig. 1 style.
    println!("\n=== Single-post walkthrough (Fig. 1) ===\n");
    let walkthrough = run_fig1_walkthrough(42);
    println!("{walkthrough}");
}
