//! Full evaluation: reproduce the paper's Table IV — per-class precision/recall/F1 and
//! accuracy for every baseline, averaged over stratified k-fold cross-validation.
//!
//! By default this runs the *fast* profile (400 posts, 5 folds, reduced transformer
//! analogues) so the whole table finishes in minutes. Pass `--paper` for the
//! paper-faithful setup (1,420 posts, 10 folds, full analogues — much slower) or
//! `--classical` to evaluate only the three classical baselines.
//!
//! Run with:
//! ```bash
//! cargo run --release --example full_evaluation            # fast profile
//! cargo run --release --example full_evaluation -- --classical
//! cargo run --release --example full_evaluation -- --paper
//! ```

use holistix::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = if args.iter().any(|a| a == "--paper") {
        EvaluationConfig::paper()
    } else {
        EvaluationConfig::fast()
    };
    if args.iter().any(|a| a == "--classical") {
        config = config.classical_only();
    }

    println!(
        "Evaluating {} baselines on {} posts with {}-fold cross-validation…\n",
        config.baselines.len(),
        config
            .corpus_size
            .map(|n| n.to_string())
            .unwrap_or_else(|| "1420".to_string()),
        config.n_folds
    );

    let result = run_table4(&config);
    println!("=== Table IV: comparison of baseline methods ===\n");
    println!("{result}");

    // The qualitative findings §III-B highlights.
    println!("Headline comparisons (paper's qualitative claims):");
    let accuracy = |name: &str| result.accuracy_of(name).unwrap_or(0.0);
    if result.row("MentalBERT").is_some() && result.row("LR").is_some() {
        println!(
            "  MentalBERT vs LR accuracy:          {:.2} vs {:.2}  (paper: 0.74 vs 0.52)",
            accuracy("MentalBERT"),
            accuracy("LR")
        );
    }
    if result.row("Gaussian NB").is_some() {
        println!(
            "  Gaussian NB is the weakest overall: {:.2}          (paper: 0.32)",
            accuracy("Gaussian NB")
        );
    }
    if let Some(row) = result.row("MentalBERT") {
        let ea = row.report.class(WellnessDimension::Emotional.index()).f1;
        let sa = row.report.class(WellnessDimension::Social.index()).f1;
        println!(
            "  EA is harder than SA for MentalBERT: F1 {:.2} vs {:.2} (paper: 0.48 vs 0.83)",
            ea, sa
        );
    }
}
