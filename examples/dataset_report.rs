//! Dataset report: regenerate the paper's Table II (dataset statistics), Table III
//! (frequent words in explanation spans) and the class distribution of §II-C, and
//! compare them against the published reference values.
//!
//! Run with:
//! ```bash
//! cargo run --release --example dataset_report
//! ```

use holistix::corpus::CorpusStatistics;
use holistix::prelude::*;

fn main() {
    // The full-size synthetic corpus (1,420 posts, Table II class balance).
    let corpus = HolistixCorpus::generate(42);

    println!("=== Table II: statistics of the dataset ===\n");
    let stats = run_table2(&corpus);
    println!("{stats}");

    println!("Class distribution (paper: IA 10.91%, VA 10.56%, SpiA 13.38%, PA 20.84%, SA 28.59%, EA 15.70%):");
    let percentages = stats.class_percentages();
    for dim in ALL_DIMENSIONS {
        println!("  {:<5} {:>6.2}%", dim.code(), percentages[dim.index()]);
    }

    println!("\nDeviation from the paper's reference counts:");
    let reference = CorpusStatistics::paper_reference();
    println!(
        "  total posts      measured {:>6}   paper {:>6}",
        stats.total_posts, reference.total_posts
    );
    println!(
        "  total words      measured {:>6}   paper {:>6}",
        stats.total_words, reference.total_words
    );
    println!(
        "  total sentences  measured {:>6}   paper {:>6}",
        stats.total_sentences, reference.total_sentences
    );
    println!(
        "  max words/post   measured {:>6}   paper {:>6}",
        stats.max_words_per_post, reference.max_words_per_post
    );
    println!(
        "  max sents/post   measured {:>6}   paper {:>6}",
        stats.max_sentences_per_post, reference.max_sentences_per_post
    );

    println!("\n=== Table III: frequent words in explanatory text spans ===\n");
    let frequent = holistix::run_table3(&corpus);
    println!("{frequent}");

    println!("=== Indicator lexicon coverage (Table I sanity check) ===\n");
    let lexicon = holistix::corpus::IndicatorLexicon::new();
    for dim in ALL_DIMENSIONS {
        let posts: Vec<_> = corpus.iter().filter(|p| p.label == dim).collect();
        let hits = posts
            .iter()
            .filter(|p| lexicon.classify_by_indicators(p.span_text()) == Some(dim))
            .count();
        println!(
            "  {:<5} indicator classifier recovers the label from the gold span for {:>4}/{:<4} posts ({:.1}%)",
            dim.code(),
            hits,
            posts.len(),
            100.0 * hits as f64 / posts.len().max(1) as f64
        );
    }
}
